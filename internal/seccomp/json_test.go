package seccomp

import (
	"bytes"
	"strings"
	"testing"

	"draco/internal/syscalls"
)

func TestJSONRoundtripDockerDefault(t *testing.T) {
	p := DockerDefault()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf, "docker-default")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSyscalls() != p.NumSyscalls() {
		t.Fatalf("syscalls %d != %d", back.NumSyscalls(), p.NumSyscalls())
	}
	if back.NumArgsChecked() != p.NumArgsChecked() {
		t.Fatalf("args checked %d != %d", back.NumArgsChecked(), p.NumArgsChecked())
	}
	if back.NumValuesAllowed() != p.NumValuesAllowed() {
		t.Fatalf("values %d != %d", back.NumValuesAllowed(), p.NumValuesAllowed())
	}
	// Semantics must survive: compile both and compare on key probes.
	fa, err := NewFilter(p, ShapeLinear)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := NewFilter(back, ShapeLinear)
	if err != nil {
		t.Fatal(err)
	}
	probes := []*Data{
		data(0, 3), data(101), data(135, PersonalityAllowed[2]), data(135, 0xbad),
		data(56, CloneAllowed[0]), data(56, 0xbad),
	}
	for _, d := range probes {
		if fa.Check(d).Action.Allows() != fb.Check(d).Action.Allows() {
			t.Fatalf("roundtrip changed semantics for nr=%d args=%v", d.Nr, d.Args)
		}
	}
}

func TestJSONFormat(t *testing.T) {
	p := DockerDefault()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"defaultAction": "SCMP_ACT_ERRNO"`,
		`"SCMP_ARCH_X86_64"`,
		`"SCMP_ACT_ALLOW"`,
		`"SCMP_CMP_EQ"`,
		`"personality"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s", want)
		}
	}
}

func TestReadJSONHandWritten(t *testing.T) {
	src := `{
	  "defaultAction": "SCMP_ACT_KILL_PROCESS",
	  "architectures": ["SCMP_ARCH_X86_64"],
	  "syscalls": [
	    {"names": ["read", "write", "exit_group"], "action": "SCMP_ACT_ALLOW"},
	    {"names": ["personality"], "action": "SCMP_ACT_ALLOW",
	     "args": [{"index": 0, "value": 4294967295, "op": "SCMP_CMP_EQ"}]},
	    {"names": ["personality"], "action": "SCMP_ACT_ALLOW",
	     "args": [{"index": 0, "value": 131080, "op": "SCMP_CMP_EQ"}]}
	  ]
	}`
	p, err := ReadJSON(strings.NewReader(src), "hand")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSyscalls() != 4 {
		t.Fatalf("syscalls = %d, want 4", p.NumSyscalls())
	}
	r, ok := p.RuleFor(135)
	if !ok || len(r.AllowedSets) != 2 {
		t.Fatalf("personality rule: %+v", r)
	}
	f, err := NewFilter(p, ShapeLinear)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Check(data(135, 0xffffffff)).Action.Allows() {
		t.Error("allowed personality value denied")
	}
	if f.Check(data(135, 7)).Action.Allows() {
		t.Error("disallowed personality value allowed")
	}
}

func TestReadJSONIDOnlyOverridesArgs(t *testing.T) {
	// An unconditional entry plus a conditional one = unconditional.
	src := `{
	  "defaultAction": "SCMP_ACT_KILL_PROCESS",
	  "syscalls": [
	    {"names": ["personality"], "action": "SCMP_ACT_ALLOW"},
	    {"names": ["personality"], "action": "SCMP_ACT_ALLOW",
	     "args": [{"index": 0, "value": 1, "op": "SCMP_CMP_EQ"}]}
	  ]
	}`
	p, err := ReadJSON(strings.NewReader(src), "x")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := p.RuleFor(135)
	if r.ChecksArgs() {
		t.Fatal("unconditional entry did not override")
	}
}

func TestReadJSONRejects(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"allow default", `{"defaultAction": "SCMP_ACT_ALLOW", "syscalls": []}`},
		{"bad action", `{"defaultAction": "SCMP_ACT_WAT", "syscalls": []}`},
		{"bad arch", `{"defaultAction": "SCMP_ACT_ERRNO", "architectures": ["SCMP_ARCH_ARM"], "syscalls": []}`},
		{"unknown syscall", `{"defaultAction": "SCMP_ACT_ERRNO", "syscalls": [{"names": ["frobnicate"], "action": "SCMP_ACT_ALLOW"}]}`},
		{"bad op", `{"defaultAction": "SCMP_ACT_ERRNO", "syscalls": [{"names": ["personality"], "action": "SCMP_ACT_ALLOW", "args": [{"index":0,"value":1,"op":"SCMP_CMP_GE"}]}]}`},
		{"deny entry", `{"defaultAction": "SCMP_ACT_ERRNO", "syscalls": [{"names": ["read"], "action": "SCMP_ACT_KILL_PROCESS"}]}`},
		{"ptr arg", `{"defaultAction": "SCMP_ACT_ERRNO", "syscalls": [{"names": ["read"], "action": "SCMP_ACT_ALLOW", "args": [{"index":1,"value":1,"op":"SCMP_CMP_EQ"}]}]}`},
		{"mismatched arg sets", `{"defaultAction": "SCMP_ACT_ERRNO", "syscalls": [
			{"names": ["lseek"], "action": "SCMP_ACT_ALLOW", "args": [{"index":0,"value":1,"op":"SCMP_CMP_EQ"}]},
			{"names": ["lseek"], "action": "SCMP_ACT_ALLOW", "args": [{"index":2,"value":1,"op":"SCMP_CMP_EQ"}]}]}`},
		{"unknown field", `{"defaultAction": "SCMP_ACT_ERRNO", "bogus": 1, "syscalls": []}`},
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c.src), "t"); err == nil {
			t.Errorf("%s: parsed unexpectedly", c.name)
		}
	}
}

func TestMaskedConditionSemantics(t *testing.T) {
	// The real docker clone rule shape: allow clone only when none of the
	// namespace-creating flag bits are set.
	const nsBits = 0x7E020000
	clone := syscalls.MustByName("clone")
	prof := &Profile{
		Name:          "masked",
		DefaultAction: ActKillProcess,
		Rules: []Rule{{
			Syscall:    clone,
			MaskedSets: [][]MaskCond{{{ArgIndex: 0, Mask: nsBits, Value: 0}}},
		}},
	}
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, shape := range []Shape{ShapeLinear, ShapeBinaryTree} {
		f, err := NewFilter(prof, shape)
		if err != nil {
			t.Fatal(err)
		}
		// Plain fork flags: allowed.
		if !f.Check(data(clone.Num, 0x01200011)).Action.Allows() {
			t.Errorf("%v: benign clone denied", shape)
		}
		// CLONE_NEWUSER (0x10000000): denied.
		if f.Check(data(clone.Num, 0x01200011|0x10000000)).Action.Allows() {
			t.Errorf("%v: CLONE_NEWUSER allowed", shape)
		}
		// Reference evaluator must agree.
		for _, v := range []uint64{0x11, 0x10000000, nsBits, 0} {
			d := data(clone.Num, v)
			if f.Check(d).Action.Allows() != prof.Evaluate(d).Allows() {
				t.Errorf("%v: filter/evaluate divergence on %#x", shape, v)
			}
		}
	}
}

func TestMaskedConditionJSONRoundtrip(t *testing.T) {
	clone := syscalls.MustByName("clone")
	prof := &Profile{
		Name:          "masked",
		DefaultAction: Errno(1),
		Rules: []Rule{
			{Syscall: syscalls.MustByName("read")},
			{
				Syscall:    clone,
				MaskedSets: [][]MaskCond{{{ArgIndex: 0, Mask: 0x7E020000, Value: 0}}},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, prof); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SCMP_CMP_MASKED_EQ") {
		t.Fatal("masked op not serialized")
	}
	back, err := ReadJSON(&buf, "masked")
	if err != nil {
		t.Fatal(err)
	}
	r, ok := back.RuleFor(clone.Num)
	if !ok || len(r.MaskedSets) != 1 {
		t.Fatalf("masked rule lost: %+v", r)
	}
	c := r.MaskedSets[0][0]
	if c.Mask != 0x7E020000 || c.Value != 0 || c.ArgIndex != 0 {
		t.Fatalf("condition drifted: %+v", c)
	}
}

func TestMaskedValidationRejects(t *testing.T) {
	clone := syscalls.MustByName("clone")
	bad := []*Profile{
		{Name: "empty-set", DefaultAction: ActKillProcess,
			Rules: []Rule{{Syscall: clone, MaskedSets: [][]MaskCond{{}}}}},
		{Name: "ptr", DefaultAction: ActKillProcess,
			Rules: []Rule{{Syscall: clone, MaskedSets: [][]MaskCond{{{ArgIndex: 1, Mask: 1, Value: 1}}}}}},
		{Name: "range", DefaultAction: ActKillProcess,
			Rules: []Rule{{Syscall: clone, MaskedSets: [][]MaskCond{{{ArgIndex: 5, Mask: 1, Value: 1}}}}}},
		{Name: "value-outside-mask", DefaultAction: ActKillProcess,
			Rules: []Rule{{Syscall: clone, MaskedSets: [][]MaskCond{{{ArgIndex: 0, Mask: 0x2, Value: 0x1}}}}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %q validated", p.Name)
		}
	}
}

func TestDockerDefaultMasked(t *testing.T) {
	p := DockerDefaultMasked()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	f, err := NewFilter(p, ShapeLinear)
	if err != nil {
		t.Fatal(err)
	}
	clone := syscalls.MustByName("clone")
	// Arbitrary thread flags without namespace bits: allowed (unlike the
	// exact-value variant).
	if !f.Check(data(clone.Num, 0x00000011)).Action.Allows() {
		t.Error("plain clone denied by masked profile")
	}
	if f.Check(data(clone.Num, 0x10000000)).Action.Allows() {
		t.Error("CLONE_NEWUSER allowed by masked profile")
	}
	// Everything else matches the exact-value variant.
	exact, err := NewFilter(DockerDefault(), ShapeLinear)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Data{data(0, 3), data(101), data(135, PersonalityAllowed[0]), data(135, 0xbad)} {
		if f.Check(d).Action.Allows() != exact.Check(d).Action.Allows() {
			t.Errorf("variants diverge on nr=%d", d.Nr)
		}
	}
}
