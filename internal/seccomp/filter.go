package seccomp

import (
	"fmt"

	"draco/internal/bpf"
)

// ExecMode selects how an attached filter executes its BPF program.
type ExecMode uint8

const (
	// ExecCompiled runs the pre-decoded direct-threaded program. It is
	// decision- and Executed-count-identical to the interpreter (the
	// differential suites pin this), so it is the default everywhere.
	ExecCompiled ExecMode = iota
	// ExecInterp runs the generic decode-and-dispatch interpreter; kept as
	// an escape hatch and as the differential baseline.
	ExecInterp
	// ExecBitmap is ExecCompiled plus the per-syscall constant-action
	// bitmap: provably arg-independent syscalls resolve in O(1) with
	// Executed == 0, everything else runs the compiled program.
	ExecBitmap
)

// String implements fmt.Stringer.
func (m ExecMode) String() string {
	switch m {
	case ExecCompiled:
		return "compiled"
	case ExecInterp:
		return "interp"
	case ExecBitmap:
		return "bitmap"
	}
	return fmt.Sprintf("execmode(%d)", uint8(m))
}

// ParseExecMode parses a -bpfexec flag value; empty selects the default.
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "", "compiled":
		return ExecCompiled, nil
	case "interp":
		return ExecInterp, nil
	case "bitmap":
		return ExecBitmap, nil
	}
	return 0, fmt.Errorf("seccomp: unknown exec mode %q (want interp, compiled, or bitmap)", s)
}

// Filter is an attached, compiled seccomp filter: the unit the kernel runs
// on every system call of a filtered process. A Filter is immutable after
// construction and safe for concurrent use.
type Filter struct {
	Profile *Profile
	Shape   Shape
	Mode    ExecMode
	prog    bpf.Program
	vm      *bpf.VM
	exec    *bpf.Exec
	bitmap  *Bitmap
}

// NewFilter compiles a profile into an attachable filter using the default
// compiled execution tier.
func NewFilter(p *Profile, shape Shape) (*Filter, error) {
	return NewFilterMode(p, shape, ExecCompiled)
}

// NewFilterMode compiles a profile into an attachable filter with an
// explicit execution mode.
func NewFilterMode(p *Profile, shape Shape, mode ExecMode) (*Filter, error) {
	prog, err := Compile(p, shape)
	if err != nil {
		return nil, err
	}
	f := &Filter{Profile: p, Shape: shape, Mode: mode, prog: prog}
	f.vm, err = bpf.NewVM(prog)
	if err != nil {
		return nil, err
	}
	if mode != ExecInterp {
		f.exec, err = bpf.Compile(prog)
		if err != nil {
			return nil, err
		}
	}
	if mode == ExecBitmap {
		f.bitmap = ComputeBitmap(prog)
	}
	return f, nil
}

// Program returns the compiled BPF program.
func (f *Filter) Program() bpf.Program { return f.prog }

// Len returns the static program length in instructions.
func (f *Filter) Len() int { return len(f.prog) }

// Bitmap returns the constant-action bitmap, or nil unless ExecBitmap.
func (f *Filter) Bitmap() *Bitmap { return f.bitmap }

// CheckResult reports one filter execution.
type CheckResult struct {
	Action Action
	// Executed is the number of BPF instructions the run executed; this is
	// the quantity the execution-time model charges for. A bitmap hit
	// executes nothing.
	Executed int
	// BitmapHit reports that the action came from the constant-action
	// bitmap without running the filter.
	BitmapHit bool
}

// Check runs the filter over a system call. Runtime faults (which real BPF
// cannot have after validation, but belt-and-braces) deny the call.
// The seccomp_data image is marshaled into a per-call stack buffer, so one
// Filter value is safe to check from many goroutines at once.
func (f *Filter) Check(d *Data) CheckResult {
	if f.bitmap != nil {
		if act, ok := f.bitmap.Lookup(d); ok {
			return CheckResult{Action: act, BitmapHit: true}
		}
	}
	var buf [DataSize]byte
	d.Marshal(buf[:])
	var r bpf.Result
	var err error
	if f.exec != nil {
		r, err = f.exec.Run(buf[:])
	} else {
		r, err = f.vm.Run(buf[:])
	}
	if err != nil {
		return CheckResult{Action: ActKillProcess, Executed: r.Executed}
	}
	return CheckResult{Action: Action(r.Value), Executed: r.Executed}
}

// Chain is a stack of attached filters. The kernel runs every attached
// filter on every system call and keeps the most restrictive result; the
// paper's syscall-complete-2x profile is exactly the syscall-complete
// filter attached twice (§IV-A).
type Chain []*Filter

// Check runs every filter and combines results; Executed sums across
// filters, which is what doubles the checking overhead for -2x profiles.
// BitmapHit is set only when every filter in the chain resolved through
// its bitmap (so the whole check was O(1) per filter).
func (c Chain) Check(d *Data) CheckResult {
	if len(c) == 0 {
		return CheckResult{Action: ActAllow}
	}
	out := CheckResult{Action: ActAllow, BitmapHit: true}
	for _, f := range c {
		r := f.Check(d)
		out.Action = Combine(out.Action, r.Action)
		out.Executed += r.Executed
		out.BitmapHit = out.BitmapHit && r.BitmapHit
	}
	return out
}

// TotalLen returns the summed static length of all filters.
func (c Chain) TotalLen() int {
	n := 0
	for _, f := range c {
		n += f.Len()
	}
	return n
}
