package seccomp

import (
	"draco/internal/bpf"
)

// Filter is an attached, compiled seccomp filter: the unit the kernel runs
// on every system call of a filtered process.
type Filter struct {
	Profile *Profile
	Shape   Shape
	prog    bpf.Program
	vm      *bpf.VM
	buf     [DataSize]byte
}

// NewFilter compiles a profile into an attachable filter.
func NewFilter(p *Profile, shape Shape) (*Filter, error) {
	prog, err := Compile(p, shape)
	if err != nil {
		return nil, err
	}
	vm, err := bpf.NewVM(prog)
	if err != nil {
		return nil, err
	}
	return &Filter{Profile: p, Shape: shape, prog: prog, vm: vm}, nil
}

// Program returns the compiled BPF program.
func (f *Filter) Program() bpf.Program { return f.prog }

// Len returns the static program length in instructions.
func (f *Filter) Len() int { return len(f.prog) }

// CheckResult reports one filter execution.
type CheckResult struct {
	Action Action
	// Executed is the number of BPF instructions the run executed; this is
	// the quantity the execution-time model charges for.
	Executed int
}

// Check runs the filter over a system call. Runtime faults (which real BPF
// cannot have after validation, but belt-and-braces) deny the call.
func (f *Filter) Check(d *Data) CheckResult {
	d.Marshal(f.buf[:])
	r, err := f.vm.Run(f.buf[:])
	if err != nil {
		return CheckResult{Action: ActKillProcess, Executed: r.Executed}
	}
	return CheckResult{Action: Action(r.Value), Executed: r.Executed}
}

// Chain is a stack of attached filters. The kernel runs every attached
// filter on every system call and keeps the most restrictive result; the
// paper's syscall-complete-2x profile is exactly the syscall-complete
// filter attached twice (§IV-A).
type Chain []*Filter

// Check runs every filter and combines results; Executed sums across
// filters, which is what doubles the checking overhead for -2x profiles.
func (c Chain) Check(d *Data) CheckResult {
	if len(c) == 0 {
		return CheckResult{Action: ActAllow}
	}
	out := CheckResult{Action: ActAllow}
	for _, f := range c {
		r := f.Check(d)
		out.Action = Combine(out.Action, r.Action)
		out.Executed += r.Executed
	}
	return out
}

// TotalLen returns the summed static length of all filters.
func (c Chain) TotalLen() int {
	n := 0
	for _, f := range c {
		n += f.Len()
	}
	return n
}
