package seccomp

import (
	"fmt"
	"sort"

	"draco/internal/ebpf"
	"draco/internal/hashes"
	"draco/internal/syscalls"
)

// MaskCond is one masked comparison: the call passes this condition when
// (args[ArgIndex] & Mask) == Value — libseccomp's SCMP_CMP_MASKED_EQ, which
// real profiles use for flag arguments (Docker's clone rule denies the
// namespace-creating CLONE_* bits this way).
type MaskCond struct {
	ArgIndex int
	Mask     uint64
	Value    uint64
}

// Holds reports whether the condition passes for args.
func (c MaskCond) Holds(args hashes.Args) bool {
	return args[c.ArgIndex]&c.Mask == c.Value
}

// Rule whitelists one system call, optionally restricted to exact argument
// value tuples and/or masked conditions. This mirrors what real-world
// profiles do: "most real-world profiles simply check system call IDs and
// argument values based on a whitelist of exact IDs and values" (paper
// §II-B), with flag arguments occasionally checked under a mask.
type Rule struct {
	// Syscall is the whitelisted call.
	Syscall syscalls.Info
	// CheckedArgs lists the argument indices whose values are checked.
	// Empty (with no MaskedSets) means the call is allowed with any
	// arguments.
	CheckedArgs []int
	// AllowedSets holds the allowed value tuples, each aligned with
	// CheckedArgs. Ignored when CheckedArgs is empty.
	AllowedSets [][]uint64
	// MaskedSets holds alternative masked-comparison conjunctions: the
	// call is also allowed when every condition of any one set holds.
	MaskedSets [][]MaskCond
}

// ChecksArgs reports whether the rule restricts argument values.
func (r Rule) ChecksArgs() bool { return len(r.CheckedArgs) > 0 || len(r.MaskedSets) > 0 }

// Matches reports whether args satisfies the rule. Values compare at the
// argument's declared width (widths.go): a file descriptor is a C int, so
// only its low four bytes are meaningful — exactly the bytes the compiled
// filter compares and the Draco bitmask selects.
func (r Rule) Matches(args hashes.Args) bool {
	if !r.ChecksArgs() {
		return true
	}
	for _, set := range r.AllowedSets {
		ok := true
		for i, idx := range r.CheckedArgs {
			m := r.Syscall.WidthMask(idx)
			if args[idx]&m != set[i]&m {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	for _, conds := range r.MaskedSets {
		ok := true
		for _, c := range conds {
			if !c.Holds(args) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Profile is a whitelist filter: rules allow, everything else gets the
// default action.
type Profile struct {
	Name          string
	DefaultAction Action
	Rules         []Rule
	// Programmable is an optional stateful policy program (internal/ebpf)
	// stacked on top of the whitelist: both must allow a call for it to run,
	// with kernel action precedence combining the two verdicts. It is
	// verified at profile-load time, so an attached profile never carries an
	// unverifiable program.
	Programmable *ebpf.Source
}

// Validate checks internal consistency of the profile.
func (p *Profile) Validate() error {
	seen := map[int]bool{}
	for _, r := range p.Rules {
		if seen[r.Syscall.Num] {
			return fmt.Errorf("seccomp: duplicate rule for %s", r.Syscall.Name)
		}
		seen[r.Syscall.Num] = true
		for _, idx := range r.CheckedArgs {
			if idx < 0 || idx >= r.Syscall.NArgs {
				return fmt.Errorf("seccomp: %s checks arg %d of %d", r.Syscall.Name, idx, r.Syscall.NArgs)
			}
			if r.Syscall.PtrMask&(1<<uint(idx)) != 0 {
				return fmt.Errorf("seccomp: %s checks pointer arg %d (TOCTOU)", r.Syscall.Name, idx)
			}
		}
		for _, set := range r.AllowedSets {
			if len(set) != len(r.CheckedArgs) {
				return fmt.Errorf("seccomp: %s has a %d-value set for %d checked args", r.Syscall.Name, len(set), len(r.CheckedArgs))
			}
		}
		for _, conds := range r.MaskedSets {
			if len(conds) == 0 {
				return fmt.Errorf("seccomp: %s has an empty masked-condition set", r.Syscall.Name)
			}
			for _, c := range conds {
				if c.ArgIndex < 0 || c.ArgIndex >= r.Syscall.NArgs {
					return fmt.Errorf("seccomp: %s masked cond on arg %d of %d", r.Syscall.Name, c.ArgIndex, r.Syscall.NArgs)
				}
				if r.Syscall.PtrMask&(1<<uint(c.ArgIndex)) != 0 {
					return fmt.Errorf("seccomp: %s masked cond on pointer arg %d (TOCTOU)", r.Syscall.Name, c.ArgIndex)
				}
				if c.Value&^c.Mask != 0 {
					return fmt.Errorf("seccomp: %s masked cond value %#x has bits outside mask %#x", r.Syscall.Name, c.Value, c.Mask)
				}
			}
		}
		if r.ChecksArgs() && len(r.AllowedSets) == 0 && len(r.MaskedSets) == 0 {
			return fmt.Errorf("seccomp: %s checks args but allows no sets", r.Syscall.Name)
		}
	}
	if p.DefaultAction.Allows() {
		return fmt.Errorf("seccomp: whitelist profile with allowing default action")
	}
	return nil
}

// SortRules orders rules by system call number; this is how container
// runtimes emit their profiles and it makes the linear chain deterministic.
func (p *Profile) SortRules() {
	sort.Slice(p.Rules, func(i, j int) bool {
		return p.Rules[i].Syscall.Num < p.Rules[j].Syscall.Num
	})
}

// RuleFor returns the rule for a syscall number, if any.
func (p *Profile) RuleFor(num int) (Rule, bool) {
	for _, r := range p.Rules {
		if r.Syscall.Num == num {
			return r, true
		}
	}
	return Rule{}, false
}

// Evaluate applies the profile semantics directly (without BPF). This is
// the reference implementation the compilers are differentially tested
// against, and the oracle Draco consults on a cache miss.
func (p *Profile) Evaluate(d *Data) Action {
	if d.Arch != AuditArchX8664 {
		return ActKillProcess
	}
	for _, r := range p.Rules {
		if r.Syscall.Num != int(d.Nr) {
			continue
		}
		if r.Matches(d.Args) {
			return ActAllow
		}
		break // rules are unique per syscall; no other rule can match
	}
	return p.DefaultAction
}

// --- Security accounting (Figure 15) -----------------------------------

// NumSyscalls returns how many system calls the profile allows.
func (p *Profile) NumSyscalls() int { return len(p.Rules) }

// NumArgsChecked returns the total number of (syscall, argument-index)
// pairs the profile checks — Figure 15(b)'s "# Arguments Checked".
func (p *Profile) NumArgsChecked() int {
	n := 0
	for _, r := range p.Rules {
		n += len(r.CheckedArgs)
		seen := map[int]bool{}
		for _, idx := range r.CheckedArgs {
			seen[idx] = true
		}
		for _, conds := range r.MaskedSets {
			for _, c := range conds {
				if !seen[c.ArgIndex] {
					seen[c.ArgIndex] = true
					n++
				}
			}
		}
	}
	return n
}

// NumValuesAllowed returns the total number of distinct argument values the
// profile admits across all checked arguments — Figure 15(b)'s "# Argument
// Values Allowed".
func (p *Profile) NumValuesAllowed() int {
	n := 0
	for _, r := range p.Rules {
		for col := range r.CheckedArgs {
			distinct := map[uint64]bool{}
			for _, set := range r.AllowedSets {
				distinct[set[col]] = true
			}
			n += len(distinct)
		}
		// Each masked condition admits a value family; count it once, the
		// way the paper's accounting counts docker-default's conditions.
		for _, conds := range r.MaskedSets {
			n += len(conds)
		}
	}
	return n
}

// NumArgSets returns the total number of allowed argument tuples, which is
// what sizes the Draco VAT.
func (p *Profile) NumArgSets() int {
	n := 0
	for _, r := range p.Rules {
		n += len(r.AllowedSets)
	}
	return n
}
