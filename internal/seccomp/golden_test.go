package seccomp

import (
	"strings"
	"testing"

	"draco/internal/bpf"
	"draco/internal/syscalls"
)

// TestFigure1CompiledGolden pins the exact code the linear compiler emits
// for the paper's Figure 1 policy (personality allowed with persona
// 0xffffffff or 0x20008): prologue, syscall-number dispatch, two
// argument-set ladders, and the default return. A change to the compiler's
// layout shows up as a diff here.
func TestFigure1CompiledGolden(t *testing.T) {
	p := &Profile{
		Name:          "figure1",
		DefaultAction: ActKillProcess,
		Rules: []Rule{{
			Syscall:     syscalls.MustByName("personality"),
			CheckedArgs: []int{0},
			AllowedSets: [][]uint64{{0xffffffff}, {0x20008}},
		}},
	}
	prog, err := Compile(p, ShapeLinear)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `   0: ldA w [4]
   1: jeq  #0xc000003e, 3, 2
   2: ret  #0x80000000
   3: ldA w [0]
   4: jeq  #0x87, 5, 16
   5: ldA w [16]
   6: jeq  #0xffffffff, 7, 10
   7: ldA w [20]
   8: jeq  #0x0, 9, 10
   9: ret  #0x7fff0000
  10: ldA w [16]
  11: jeq  #0x20008, 12, 15
  12: ldA w [20]
  13: jeq  #0x0, 14, 15
  14: ret  #0x7fff0000
  15: ldA w [0]
  16: ret  #0x80000000
`
	got := bpf.Disassemble(prog)
	if got != golden {
		t.Errorf("compiled program diverged from golden:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestGenericProfilesCompile smoke-compiles every shipped generic profile
// under both shapes and bounds their sizes.
func TestGenericProfilesCompile(t *testing.T) {
	for _, p := range []*Profile{DockerDefault(), GVisorDefault(), Firecracker()} {
		for _, shape := range []Shape{ShapeLinear, ShapeBinaryTree} {
			prog, err := Compile(p, shape)
			if err != nil {
				t.Fatalf("%s/%v: %v", p.Name, shape, err)
			}
			if len(prog) < p.NumSyscalls() {
				t.Errorf("%s/%v: %d instructions for %d rules", p.Name, shape, len(prog), p.NumSyscalls())
			}
			if len(prog) > 8192 {
				t.Errorf("%s/%v: %d instructions, implausibly large for a generic profile", p.Name, shape, len(prog))
			}
		}
	}
}

// TestOptimizerOnCompiledFilters: the BPF optimizer must preserve compiled
// filter semantics (the JIT invariant) on real profiles.
func TestOptimizerOnCompiledFilters(t *testing.T) {
	p := DockerDefault()
	prog, err := Compile(p, ShapeBinaryTree)
	if err != nil {
		t.Fatal(err)
	}
	opt := bpf.Optimize(prog)
	vmA, err := bpf.NewVM(prog)
	if err != nil {
		t.Fatal(err)
	}
	vmB, err := bpf.NewVM(opt)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, DataSize)
	for nr := 0; nr < 450; nr += 7 {
		d := Data{Nr: int32(nr), Arch: AuditArchX8664}
		d.Args[0] = uint64(nr) * 3
		d.Marshal(buf)
		ra, errA := vmA.Run(buf)
		rb, errB := vmB.Run(buf)
		if errA != nil || errB != nil {
			t.Fatalf("nr=%d: run errors %v / %v", nr, errA, errB)
		}
		if ra.Value != rb.Value {
			t.Fatalf("nr=%d: optimizer changed action %#x -> %#x", nr, ra.Value, rb.Value)
		}
		if rb.Executed > ra.Executed {
			t.Fatalf("nr=%d: optimizer slowed execution %d -> %d", nr, ra.Executed, rb.Executed)
		}
	}
	if strings.Contains(bpf.Disassemble(opt), ".word") {
		t.Fatal("optimizer emitted unknown opcodes")
	}
}
