package seccomp_test

// External-package tests for the filter execution tiers: the compiled
// direct-threaded program and the per-syscall constant-action bitmap.
// They live outside package seccomp so they can build real profiles with
// profilegen/workloads (which import seccomp) without a cycle.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"draco/internal/profilegen"
	"draco/internal/seccomp"
	"draco/internal/workloads"
)

// allProfiles returns the syscall-complete profile of every workload plus
// docker-default: the same population the paper's experiments run over.
func allProfiles(t testing.TB) []*seccomp.Profile {
	t.Helper()
	var ps []*seccomp.Profile
	for _, w := range workloads.All() {
		tr := w.Generate(5_000, 0xD12AC0)
		ps = append(ps, profilegen.Complete(w.Name, tr, profilegen.Options{IncludeRuntime: true}))
	}
	return append(ps, seccomp.DockerDefault())
}

// argSamples returns argument tuples to probe a syscall with: fixed
// corner values plus seeded random fills, so the differential exercises
// both sides of every argument comparison a filter might make.
func argSamples(rng *rand.Rand) [][6]uint64 {
	out := [][6]uint64{
		{},
		{1, 1, 1, 1, 1, 1},
		{0xffffffff, 0xffffffff00000000, 0x8000, 0x7fffffffffffffff, 1 << 32, 3},
	}
	for i := 0; i < 5; i++ {
		var a [6]uint64
		for j := range a {
			a[j] = rng.Uint64()
		}
		out = append(out, a)
	}
	return out
}

// TestBitmapSoundnessDifferential pins the two properties the bitmap tier
// must have across every real profile, both filter shapes:
//
//  1. Soundness: for every syscall number the bitmap claims to know, the
//     bitmap action equals what the interpreter returns for ANY argument
//     tuple (sampled corners + random fills).
//  2. Precision where it matters: syscalls whose rules check argument
//     values never resolve through the bitmap — they must run the filter.
func TestBitmapSoundnessDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0xB17A))
	for _, p := range allProfiles(t) {
		for _, shape := range []seccomp.Shape{seccomp.ShapeLinear, seccomp.ShapeBinaryTree} {
			base, err := seccomp.NewFilterMode(p, shape, seccomp.ExecInterp)
			if err != nil {
				t.Fatalf("%s/%s interp: %v", p.Name, shape, err)
			}
			fast, err := seccomp.NewFilterMode(p, shape, seccomp.ExecBitmap)
			if err != nil {
				t.Fatalf("%s/%s bitmap: %v", p.Name, shape, err)
			}
			bm := fast.Bitmap()
			if bm == nil || bm.KnownCount() == 0 {
				t.Fatalf("%s/%s: no bitmap entries (KnownCount=%d)", p.Name, shape, bm.KnownCount())
			}
			for _, r := range p.Rules {
				if r.ChecksArgs() && r.Syscall.Num < seccomp.BitmapMaxNr && bm.Known(int32(r.Syscall.Num)) {
					t.Errorf("%s/%s: arg-checked %s resolves through the bitmap", p.Name, shape, r.Syscall.Name)
				}
			}
			samples := argSamples(rng)
			for nr := int32(0); nr < seccomp.BitmapMaxNr; nr++ {
				for _, args := range samples {
					d := seccomp.Data{Nr: nr, Arch: seccomp.AuditArchX8664, Args: args}
					want := base.Check(&d)
					got := fast.Check(&d)
					if got.Action != want.Action {
						t.Fatalf("%s/%s nr=%d args=%v: bitmap tier returned %v, interpreter %v",
							p.Name, shape, nr, args, got.Action, want.Action)
					}
					if bm.Known(nr) != got.BitmapHit {
						t.Fatalf("%s/%s nr=%d: Known=%v but BitmapHit=%v",
							p.Name, shape, nr, bm.Known(nr), got.BitmapHit)
					}
					if got.BitmapHit && got.Executed != 0 {
						t.Fatalf("%s/%s nr=%d: bitmap hit executed %d instructions", p.Name, shape, nr, got.Executed)
					}
					if !got.BitmapHit && got.Executed != want.Executed {
						t.Fatalf("%s/%s nr=%d: compiled executed %d, interpreter %d",
							p.Name, shape, nr, got.Executed, want.Executed)
					}
				}
			}
			// Wrong-architecture checks must bypass the bitmap entirely.
			d := seccomp.Data{Nr: 0, Arch: 0}
			if r := fast.Check(&d); r.BitmapHit {
				t.Fatalf("%s/%s: foreign-arch check resolved through the x86-64 bitmap", p.Name, shape)
			}
		}
	}
}

// TestFilterSharedAcrossGoroutines checks exactly one Filter value from
// many goroutines at once. Before the scratch buffer moved onto the call
// stack this raced on Filter.buf; the full check.sh suite runs this under
// -race.
func TestFilterSharedAcrossGoroutines(t *testing.T) {
	p := seccomp.DockerDefault()
	f, err := seccomp.NewFilterMode(p, seccomp.ShapeLinear, seccomp.ExecBitmap)
	if err != nil {
		t.Fatal(err)
	}
	// Serial baseline over a mixed stream: bitmap hits, filter runs
	// (arg-checked personality), and denials.
	mk := func(i int) seccomp.Data {
		return seccomp.Data{
			Nr:   int32(i % 420),
			Arch: seccomp.AuditArchX8664,
			Args: [6]uint64{uint64(i), uint64(i) << 32, 8, 0, 0, 0},
		}
	}
	const perG = 2_000
	want := make([]seccomp.CheckResult, perG)
	for i := range want {
		d := mk(i)
		want[i] = f.Check(&d)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				d := mk(i)
				if r := f.Check(&d); r != want[i] {
					select {
					case errs <- fmt.Sprintf("nr=%d args=%v", d.Nr, d.Args):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if s, ok := <-errs; ok {
		t.Fatalf("concurrent check diverged from serial baseline at %s", s)
	}
}

// TestFilterCheckZeroAllocs pins zero allocations per check on both fast
// paths: the bitmap O(1) resolve and the compiled-program run (the miss
// path the execution-time model charges for).
func TestFilterCheckZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is perturbed under -race")
	}
	p := seccomp.DockerDefault()
	f, err := seccomp.NewFilterMode(p, seccomp.ShapeLinear, seccomp.ExecBitmap)
	if err != nil {
		t.Fatal(err)
	}
	getpid := seccomp.Data{Nr: 39, Arch: seccomp.AuditArchX8664}
	if r := f.Check(&getpid); !r.BitmapHit {
		t.Fatalf("getpid did not bitmap-resolve: %+v", r)
	}
	if n := testing.AllocsPerRun(2000, func() { f.Check(&getpid) }); n != 0 {
		t.Fatalf("bitmap fast path allocates %.2f allocs/op, want 0", n)
	}
	// personality(0) is arg-checked, so it always runs the compiled program.
	personality := seccomp.Data{Nr: 135, Arch: seccomp.AuditArchX8664}
	if r := f.Check(&personality); r.BitmapHit || r.Executed == 0 {
		t.Fatalf("personality did not run the filter: %+v", r)
	}
	if n := testing.AllocsPerRun(2000, func() { f.Check(&personality) }); n != 0 {
		t.Fatalf("compiled exec path allocates %.2f allocs/op, want 0", n)
	}
}

// BenchmarkFilterExec compares the three execution tiers on docker-default
// over a deep (late-in-the-ladder) arg-independent syscall, the shape of
// check the bitmap is built for.
func BenchmarkFilterExec(b *testing.B) {
	p := seccomp.DockerDefault()
	d := seccomp.Data{Nr: 39, Arch: seccomp.AuditArchX8664} // getpid
	for _, mode := range []seccomp.ExecMode{seccomp.ExecInterp, seccomp.ExecCompiled, seccomp.ExecBitmap} {
		f, err := seccomp.NewFilterMode(p, seccomp.ShapeLinear, mode)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.Check(&d)
			}
		})
	}
}
