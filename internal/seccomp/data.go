package seccomp

import (
	"encoding/binary"

	"draco/internal/hashes"
)

// AuditArchX8664 is the AUDIT_ARCH_X86_64 architecture token carried in
// seccomp_data.
const AuditArchX8664 = 0xC000003E

// DataSize is sizeof(struct seccomp_data): nr(4) + arch(4) + ip(8) + 6*8.
const DataSize = 64

// Field offsets within seccomp_data, used by the compilers.
const (
	OffNr   = 0
	OffArch = 4
	OffIP   = 8
	OffArgs = 16
)

// Data mirrors the kernel's struct seccomp_data: the only state a seccomp
// filter may inspect. Its statelessness is what makes Draco's caching
// correct (paper §V: "Seccomp profiles are stateless").
type Data struct {
	Nr   int32
	Arch uint32
	IP   uint64
	Args hashes.Args
}

// Marshal encodes the structure in the kernel's little-endian layout into
// buf, which must have at least DataSize bytes.
func (d *Data) Marshal(buf []byte) {
	binary.LittleEndian.PutUint32(buf[OffNr:], uint32(d.Nr))
	binary.LittleEndian.PutUint32(buf[OffArch:], d.Arch)
	binary.LittleEndian.PutUint64(buf[OffIP:], d.IP)
	for i, a := range d.Args {
		binary.LittleEndian.PutUint64(buf[OffArgs+8*i:], a)
	}
}

// ArgLowOff returns the offset of the low 32-bit word of argument i.
func ArgLowOff(i int) uint32 { return uint32(OffArgs + 8*i) }

// ArgHighOff returns the offset of the high 32-bit word of argument i.
func ArgHighOff(i int) uint32 { return uint32(OffArgs + 8*i + 4) }
