package seccomp

import (
	"draco/internal/bpf"
)

// This file implements the per-syscall constant-action bitmap, modeled on
// the seccomp cache Linux gained in 5.11: at filter attach time, abstractly
// interpret the filter once per syscall number with the arguments (and ip)
// treated as unknown. If every path the filter can take for that number
// provably returns the same action regardless of the unknown words, the
// action is recorded and later checks of that number resolve in O(1)
// without executing the filter at all.
//
// Soundness argument: the abstract lattice has two levels per 32-bit cell
// — known(v), meaning the cell equals v on every concrete run with this
// (nr, arch), and unknown, meaning no claim. Every abstract transfer
// function only marks a cell known when the concrete semantics forces that
// exact value (constants, loads of the fixed nr/arch words, ALU over known
// operands), and every branch whose condition depends on an unknown cell
// propagates to BOTH targets. States meeting at a join keep only cells
// that are known-equal on both sides. The analysis therefore explores a
// superset of the concretely reachable paths, and declares the action
// known only when every reachable RET site returns one identical known
// value. Anything the analysis cannot prove — indirect or MSH loads,
// division by an unknown (or zero) X, a potentially-faulting load, RET A
// with A unknown, or two different reachable return values — makes the
// syscall fall back to real filter execution, never mis-resolves it.
// Forward-only jumps (enforced by validation) make the program a DAG, so
// one pass in pc order with per-pc state merging visits each reachable
// instruction once.
const (
	// BitmapMaxNr bounds the syscall numbers the bitmap covers; x86-64
	// numbers fit comfortably. Checks outside the range use the filter.
	BitmapMaxNr = 512
)

// Bitmap holds the provably arg-independent actions of one filter program
// for one architecture. Immutable after ComputeBitmap; safe to share.
type Bitmap struct {
	arch    uint32
	known   [BitmapMaxNr]bool
	actions [BitmapMaxNr]Action
	count   int
}

// Lookup resolves a check in O(1) if the action for this (arch, nr) is
// provably argument-independent.
func (b *Bitmap) Lookup(d *Data) (Action, bool) {
	if b == nil || d.Arch != b.arch || uint32(d.Nr) >= BitmapMaxNr {
		return 0, false
	}
	return b.actions[d.Nr], b.known[d.Nr]
}

// Known reports whether nr resolves through the bitmap.
func (b *Bitmap) Known(nr int32) bool {
	return b != nil && uint32(nr) < BitmapMaxNr && b.known[nr]
}

// ConstAction returns the proven argument-independent action for nr, if
// any: the compile hook profile-plane builders use to decide at attach
// time that a syscall's whole decision is a constant.
func (b *Bitmap) ConstAction(nr int32) (Action, bool) {
	if b == nil || uint32(nr) >= BitmapMaxNr || !b.known[nr] {
		return 0, false
	}
	return b.actions[nr], true
}

// KnownCount returns how many syscall numbers resolve through the bitmap.
func (b *Bitmap) KnownCount() int {
	if b == nil {
		return 0
	}
	return b.count
}

// absVal is one abstract 32-bit cell: a proven constant or unknown.
type absVal struct {
	known bool
	v     uint32
}

// absState is the abstract machine state reaching one pc.
type absState struct {
	gen  uint32
	a, x absVal
	mem  [bpf.ScratchSlots]absVal
}

// bitmapComputer runs the per-nr abstract passes, reusing its per-pc state
// array across numbers via generation stamps.
type bitmapComputer struct {
	prog   bpf.Program
	states []absState
	heap   []int32 // min-heap of pending pcs for the current pass
	gen    uint32
}

// ComputeBitmap abstractly interprets prog for every syscall number in
// range, for the x86-64 architecture word, and returns the bitmap of
// proven constant actions. The program must already validate; numbers
// whose analysis bails for any reason are simply left unknown.
func ComputeBitmap(prog bpf.Program) *Bitmap {
	if prog.ValidateMax(bpf.ExtendedMaxInsns) != nil {
		return nil
	}
	b := &Bitmap{arch: AuditArchX8664}
	c := &bitmapComputer{prog: prog, states: make([]absState, len(prog))}
	for nr := uint32(0); nr < BitmapMaxNr; nr++ {
		if act, ok := c.run(nr, b.arch); ok {
			b.known[nr] = true
			b.actions[nr] = act
			b.count++
		}
	}
	return b
}

// push queues pc for processing, merging st into its pending state.
func (c *bitmapComputer) push(pc int32, st *absState) {
	dst := &c.states[pc]
	if dst.gen != c.gen {
		*dst = *st
		dst.gen = c.gen
		// Sift up.
		c.heap = append(c.heap, pc)
		i := len(c.heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if c.heap[parent] <= c.heap[i] {
				break
			}
			c.heap[parent], c.heap[i] = c.heap[i], c.heap[parent]
			i = parent
		}
		return
	}
	// Join: keep only cells proven equal on both paths.
	meet(&dst.a, st.a)
	meet(&dst.x, st.x)
	for i := range dst.mem {
		meet(&dst.mem[i], st.mem[i])
	}
}

func meet(dst *absVal, src absVal) {
	if !src.known || !dst.known || dst.v != src.v {
		dst.known = false
	}
}

// pop removes and returns the smallest pending pc.
func (c *bitmapComputer) pop() int32 {
	pc := c.heap[0]
	last := len(c.heap) - 1
	c.heap[0] = c.heap[last]
	c.heap = c.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l <= last-1 && c.heap[l] < c.heap[small] {
			small = l
		}
		if r <= last-1 && c.heap[r] < c.heap[small] {
			small = r
		}
		if small == i {
			break
		}
		c.heap[i], c.heap[small] = c.heap[small], c.heap[i]
		i = small
	}
	return pc
}

// run analyzes one syscall number; ok reports a proven constant action.
func (c *bitmapComputer) run(nr, arch uint32) (Action, bool) {
	c.gen++
	c.heap = c.heap[:0]
	var init absState
	init.a = absVal{known: true}
	init.x = absVal{known: true}
	for i := range init.mem {
		init.mem[i] = absVal{known: true}
	}
	c.push(0, &init)

	var ret absVal
	haveRet := false
	for len(c.heap) > 0 {
		pc := c.pop()
		st := c.states[pc] // copy: pushes below may grow/merge states
		ins := c.prog[pc]
		next := pc + 1
		switch ins.Op & 0x07 {
		case bpf.ClassLD, bpf.ClassLDX:
			v, ok := absLoad(ins, nr, arch, st.x, &st.mem)
			if !ok {
				return 0, false // potential fault or unmodeled mode: bail
			}
			if ins.Op&0x07 == bpf.ClassLDX {
				st.x = v
			} else {
				st.a = v
			}
			c.push(next, &st)
		case bpf.ClassST:
			st.mem[ins.K] = st.a
			c.push(next, &st)
		case bpf.ClassSTX:
			st.mem[ins.K] = st.x
			c.push(next, &st)
		case bpf.ClassALU:
			v, ok := absALU(ins, st.a, st.x)
			if !ok {
				return 0, false // division by unknown or zero X: bail
			}
			st.a = v
			c.push(next, &st)
		case bpf.ClassJMP:
			op := ins.Op & 0xf0
			if op == bpf.JmpJA {
				c.push(pc+1+int32(ins.K), &st)
				break
			}
			operand := absVal{known: true, v: ins.K}
			if ins.Op&bpf.SrcX != 0 {
				operand = st.x
			}
			tt := pc + 1 + int32(ins.Jt)
			tf := pc + 1 + int32(ins.Jf)
			if st.a.known && operand.known {
				var cond bool
				switch op {
				case bpf.JmpJEQ:
					cond = st.a.v == operand.v
				case bpf.JmpJGT:
					cond = st.a.v > operand.v
				case bpf.JmpJGE:
					cond = st.a.v >= operand.v
				case bpf.JmpJSET:
					cond = st.a.v&operand.v != 0
				}
				if cond {
					c.push(tt, &st)
				} else {
					c.push(tf, &st)
				}
			} else {
				// Condition depends on unknown input: both ways.
				c.push(tt, &st)
				c.push(tf, &st)
			}
		case bpf.ClassRET:
			v := absVal{known: true, v: ins.K}
			if ins.Op&0x18 == 0x10 {
				v = st.a
			}
			if !v.known {
				return 0, false
			}
			if haveRet && ret.v != v.v {
				return 0, false // two reachable outcomes: arg-dependent
			}
			ret, haveRet = v, true
		case bpf.ClassMISC:
			if ins.Op&0xf8 == bpf.MiscTAX {
				st.x = st.a
			} else {
				st.a = st.x
			}
			c.push(next, &st)
		}
	}
	if !haveRet {
		return 0, false
	}
	return Action(ret.v), true
}

// absLoad models a load against seccomp_data with fixed nr/arch and
// unknown ip/args; ok=false bails the whole pass (possible fault, or a
// mode whose effect we do not model).
func absLoad(ins bpf.Instruction, nr, arch uint32, x absVal, mem *[bpf.ScratchSlots]absVal) (absVal, bool) {
	switch ins.Op & 0xe0 {
	case bpf.ModeIMM:
		return absVal{known: true, v: ins.K}, true
	case bpf.ModeLEN:
		return absVal{known: true, v: DataSize}, true
	case bpf.ModeMEM:
		return mem[ins.K], true
	case bpf.ModeABS:
		size := loadSize(ins)
		if uint64(ins.K)+uint64(size) > DataSize {
			return absVal{}, false // would fault
		}
		if size == 4 && ins.K == OffNr {
			return absVal{known: true, v: nr}, true
		}
		if size == 4 && ins.K == OffArch {
			return absVal{known: true, v: arch}, true
		}
		return absVal{}, true // ip/args word: unknown but safe
	case bpf.ModeIND:
		if !x.known {
			return absVal{}, false // offset unknown: could fault
		}
		size := loadSize(ins)
		if uint64(ins.K)+uint64(x.v)+uint64(size) > DataSize {
			return absVal{}, false
		}
		return absVal{}, true
	case bpf.ModeMSH:
		if uint64(ins.K) >= DataSize {
			return absVal{}, false
		}
		return absVal{}, true // derived from an unknown data byte
	}
	return absVal{}, false
}

func loadSize(ins bpf.Instruction) uint32 {
	switch ins.Op & 0x18 {
	case bpf.SizeH:
		return 2
	case bpf.SizeB:
		return 1
	}
	return 4
}

// absALU models an ALU op; results are known only when forced.
func absALU(ins bpf.Instruction, a, x absVal) (absVal, bool) {
	op := ins.Op & 0xf0
	if op == bpf.ALUNeg {
		if !a.known {
			return absVal{}, true
		}
		return absVal{known: true, v: -a.v}, true
	}
	operand := absVal{known: true, v: ins.K}
	if ins.Op&bpf.SrcX != 0 {
		operand = x
	}
	if op == bpf.ALUDiv || op == bpf.ALUMod {
		if !operand.known {
			return absVal{}, false // could divide by zero at runtime
		}
		if operand.v == 0 {
			return absVal{}, false
		}
	}
	if !a.known || !operand.known {
		return absVal{}, true
	}
	v := a.v
	switch op {
	case bpf.ALUAdd:
		v += operand.v
	case bpf.ALUSub:
		v -= operand.v
	case bpf.ALUMul:
		v *= operand.v
	case bpf.ALUDiv:
		v /= operand.v
	case bpf.ALUOr:
		v |= operand.v
	case bpf.ALUAnd:
		v &= operand.v
	case bpf.ALULsh:
		v <<= operand.v & 31
	case bpf.ALURsh:
		v >>= operand.v & 31
	case bpf.ALUMod:
		v %= operand.v
	case bpf.ALUXor:
		v ^= operand.v
	}
	return absVal{known: true, v: v}, true
}
