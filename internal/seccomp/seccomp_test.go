package seccomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"draco/internal/hashes"
	"draco/internal/syscalls"
)

func data(nr int, args ...uint64) *Data {
	d := &Data{Nr: int32(nr), Arch: AuditArchX8664, IP: 0x400000}
	copy(d.Args[:], args)
	return d
}

func TestActionSemantics(t *testing.T) {
	if !ActAllow.Allows() {
		t.Error("allow does not allow")
	}
	if !ActLog.Allows() {
		t.Error("log should allow")
	}
	for _, a := range []Action{ActKillProcess, ActKillThread, ActTrap, Errno(13)} {
		if a.Allows() {
			t.Errorf("%v should not allow", a)
		}
	}
	if Errno(13).Masked() != ActErrnoBase {
		t.Error("errno masking broken")
	}
	if Combine(ActAllow, ActKillProcess) != ActKillProcess {
		t.Error("combine should keep most restrictive (kill < allow numerically... kill_process=0x80000000)")
	}
	if Combine(ActKillThread, ActAllow) != ActKillThread {
		t.Error("combine kept wrong action")
	}
}

// figure1Profile reproduces the paper's Figure 1 example: personality is
// allowed only with persona 0xffffffff or 0x20008.
func figure1Profile() *Profile {
	return &Profile{
		Name:          "figure1",
		DefaultAction: ActKillProcess,
		Rules: []Rule{{
			Syscall:     syscalls.MustByName("personality"),
			CheckedArgs: []int{0},
			AllowedSets: [][]uint64{{0xffffffff}, {0x20008}},
		}},
	}
}

func TestFigure1Semantics(t *testing.T) {
	p := figure1Profile()
	for _, shape := range []Shape{ShapeLinear, ShapeBinaryTree} {
		f, err := NewFilter(p, shape)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if r := f.Check(data(135, 0xffffffff)); r.Action != ActAllow {
			t.Errorf("%v: personality(0xffffffff) = %v, want allow", shape, r.Action)
		}
		if r := f.Check(data(135, 0x20008)); r.Action != ActAllow {
			t.Errorf("%v: personality(0x20008) = %v, want allow", shape, r.Action)
		}
		if r := f.Check(data(135, 0x1234)); r.Action != ActKillProcess {
			t.Errorf("%v: personality(0x1234) = %v, want kill", shape, r.Action)
		}
		if r := f.Check(data(0, 3)); r.Action != ActKillProcess {
			t.Errorf("%v: read = %v, want kill", shape, r.Action)
		}
	}
}

func TestWrongArchKilled(t *testing.T) {
	f, err := NewFilter(figure1Profile(), ShapeLinear)
	if err != nil {
		t.Fatal(err)
	}
	d := data(135, 0xffffffff)
	d.Arch = 0x40000003 // i386
	if r := f.Check(d); r.Action != ActKillProcess {
		t.Fatalf("foreign arch allowed: %v", r.Action)
	}
}

func TestHighArgWordChecked(t *testing.T) {
	// Values above 2^32 must be distinguished: cBPF compares both words.
	p := &Profile{
		Name:          "hi",
		DefaultAction: ActKillProcess,
		Rules: []Rule{{
			Syscall:     syscalls.MustByName("lseek"),
			CheckedArgs: []int{1},
			AllowedSets: [][]uint64{{0x1_00000000}},
		}},
	}
	for _, shape := range []Shape{ShapeLinear, ShapeBinaryTree} {
		f, err := NewFilter(p, shape)
		if err != nil {
			t.Fatal(err)
		}
		if r := f.Check(data(8, 0, 0x1_00000000)); r.Action != ActAllow {
			t.Errorf("%v: exact 64-bit value not allowed", shape)
		}
		if r := f.Check(data(8, 0, 0)); r.Action == ActAllow {
			t.Errorf("%v: low-word-only match allowed", shape)
		}
		if r := f.Check(data(8, 0, 0x2_00000000)); r.Action == ActAllow {
			t.Errorf("%v: high-word mismatch allowed", shape)
		}
	}
}

func TestDockerDefaultShape(t *testing.T) {
	p := DockerDefault()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	n := p.NumSyscalls()
	// Our syscall table is slightly smaller than the paper's 403-call
	// kernel; docker-default must still be a broad whitelist.
	if n < 250 || n >= syscalls.Count() {
		t.Fatalf("docker-default allows %d syscalls, want broad whitelist < %d", n, syscalls.Count())
	}
	if got := p.NumArgsChecked(); got != 2 {
		t.Fatalf("docker-default checks %d args, want 2 (clone, personality)", got)
	}
	if got := p.NumValuesAllowed(); got != 7 {
		t.Fatalf("docker-default allows %d argument values, want 7 (paper §II-C)", got)
	}
}

func TestDockerDefaultBehaviour(t *testing.T) {
	f, err := NewFilter(DockerDefault(), ShapeLinear)
	if err != nil {
		t.Fatal(err)
	}
	if r := f.Check(data(0, 3)); r.Action != ActAllow { // read
		t.Errorf("read denied: %v", r.Action)
	}
	ptrace := syscalls.MustByName("ptrace")
	if r := f.Check(data(ptrace.Num)); r.Action.Allows() {
		t.Error("ptrace allowed by docker-default")
	}
	if r := f.Check(data(135, PersonalityAllowed[0])); r.Action != ActAllow {
		t.Error("allowed personality value denied")
	}
	if r := f.Check(data(135, 0xdead)); r.Action.Allows() {
		t.Error("arbitrary personality value allowed")
	}
}

func TestGVisorAndFirecrackerCounts(t *testing.T) {
	g := GVisorDefault()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.NumSyscalls(); got != 74 {
		t.Errorf("gvisor allows %d syscalls, want 74", got)
	}
	if got := g.NumArgsChecked(); got != 130 {
		t.Errorf("gvisor checks %d args, want 130", got)
	}
	fc := Firecracker()
	if err := fc.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := fc.NumSyscalls(); got != 37 {
		t.Errorf("firecracker allows %d syscalls, want 37", got)
	}
	if got := fc.NumArgsChecked(); got != 8 {
		t.Errorf("firecracker checks %d args, want 8", got)
	}
}

func TestStripArgs(t *testing.T) {
	p := figure1Profile()
	s := StripArgs(p)
	if s.NumArgsChecked() != 0 {
		t.Fatal("StripArgs left arg checks")
	}
	f, err := NewFilter(s, ShapeLinear)
	if err != nil {
		t.Fatal(err)
	}
	if r := f.Check(data(135, 0xdead)); r.Action != ActAllow {
		t.Error("noargs profile should allow any personality value")
	}
}

func TestChainCombinesAndSumsCost(t *testing.T) {
	f, err := NewFilter(figure1Profile(), ShapeLinear)
	if err != nil {
		t.Fatal(err)
	}
	single := Chain{f}.Check(data(135, 0x20008))
	double := Chain{f, f}.Check(data(135, 0x20008))
	if double.Action != ActAllow {
		t.Fatal("chain denied an allowed call")
	}
	if double.Executed != 2*single.Executed {
		t.Fatalf("2x chain executed %d, want %d", double.Executed, 2*single.Executed)
	}
	// A denying filter anywhere in the chain denies.
	deny := &Profile{Name: "deny-all", DefaultAction: ActKillProcess}
	fd, err := NewFilter(deny, ShapeLinear)
	if err != nil {
		t.Fatal(err)
	}
	if r := (Chain{f, fd}).Check(data(135, 0x20008)); r.Action.Allows() {
		t.Fatal("deny-all filter in chain did not deny")
	}
}

func TestEmptyChainAllows(t *testing.T) {
	if r := (Chain{}).Check(data(0)); r.Action != ActAllow || r.Executed != 0 {
		t.Fatalf("empty chain: %+v", r)
	}
}

func TestTreeCheaperThanLinearForHighSyscalls(t *testing.T) {
	p := DockerDefault()
	lin, err := NewFilter(p, ShapeLinear)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewFilter(p, ShapeBinaryTree)
	if err != nil {
		t.Fatal(err)
	}
	// openat (257) sits deep in the linear chain; the tree reaches it in
	// O(log n).
	d := data(257, 4, 0, 0, 0)
	rl := lin.Check(d)
	rt := tree.Check(d)
	if rl.Action != ActAllow || rt.Action != ActAllow {
		t.Fatalf("openat denied: lin=%v tree=%v", rl.Action, rt.Action)
	}
	if rt.Executed >= rl.Executed {
		t.Fatalf("tree executed %d >= linear %d for a deep syscall", rt.Executed, rl.Executed)
	}
}

func TestProfileValidateRejects(t *testing.T) {
	read := syscalls.MustByName("read")
	bad := []*Profile{
		// duplicate rule
		{Name: "dup", DefaultAction: ActKillProcess,
			Rules: []Rule{{Syscall: read}, {Syscall: read}}},
		// pointer arg checked
		{Name: "ptr", DefaultAction: ActKillProcess,
			Rules: []Rule{{Syscall: read, CheckedArgs: []int{1}, AllowedSets: [][]uint64{{1}}}}},
		// arg index out of range
		{Name: "range", DefaultAction: ActKillProcess,
			Rules: []Rule{{Syscall: read, CheckedArgs: []int{5}, AllowedSets: [][]uint64{{1}}}}},
		// set width mismatch
		{Name: "width", DefaultAction: ActKillProcess,
			Rules: []Rule{{Syscall: read, CheckedArgs: []int{0}, AllowedSets: [][]uint64{{1, 2}}}}},
		// allowing default
		{Name: "default", DefaultAction: ActAllow},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %q validated unexpectedly", p.Name)
		}
	}
}

// TestDifferentialCompilers checks linear and tree compilation against the
// reference Evaluate over randomized profiles and inputs.
func TestDifferentialCompilers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	allCalls := syscalls.All()
	for trial := 0; trial < 25; trial++ {
		// Random profile: 1..40 syscalls, some with arg checks.
		nRules := 1 + rng.Intn(40)
		perm := rng.Perm(len(allCalls))
		p := &Profile{Name: "fuzz", DefaultAction: ActKillProcess}
		for i := 0; i < nRules; i++ {
			in := allCalls[perm[i]]
			r := Rule{Syscall: in}
			checked := in.CheckedArgs()
			if len(checked) > 0 && rng.Intn(2) == 0 {
				k := 1 + rng.Intn(len(checked))
				r.CheckedArgs = checked[:k]
				nSets := 1 + rng.Intn(4)
				for s := 0; s < nSets; s++ {
					set := make([]uint64, k)
					for j := range set {
						set[j] = uint64(rng.Intn(4)) << (32 * uint(rng.Intn(2)))
					}
					r.AllowedSets = append(r.AllowedSets, set)
				}
			}
			p.Rules = append(p.Rules, r)
		}
		lin, err := NewFilter(p, ShapeLinear)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := NewFilter(p, ShapeBinaryTree)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 200; probe++ {
			var d Data
			d.Arch = AuditArchX8664
			if rng.Intn(4) == 0 {
				d.Nr = int32(rng.Intn(440))
			} else {
				d.Nr = int32(p.Rules[rng.Intn(len(p.Rules))].Syscall.Num)
			}
			for j := range d.Args {
				d.Args[j] = uint64(rng.Intn(4)) << (32 * uint(rng.Intn(2)))
			}
			want := p.Evaluate(&d)
			if got := lin.Check(&d); got.Action != want {
				t.Fatalf("linear mismatch nr=%d args=%v: got %v want %v", d.Nr, d.Args, got.Action, want)
			}
			if got := tree.Check(&d); got.Action != want {
				t.Fatalf("tree mismatch nr=%d args=%v: got %v want %v", d.Nr, d.Args, got.Action, want)
			}
		}
	}
}

func TestQuickRuleMatches(t *testing.T) {
	read := syscalls.MustByName("read")
	r := Rule{
		Syscall:     read,
		CheckedArgs: []int{0, 2},
		AllowedSets: [][]uint64{{3, 4096}, {5, 8192}},
	}
	f := func(fd, count uint64) bool {
		args := hashes.Args{fd, 0xdead, count}
		want := (fd == 3 && count == 4096) || (fd == 5 && count == 8192)
		return r.Matches(args) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLinearDockerDefaultRead(b *testing.B) {
	f, err := NewFilter(DockerDefault(), ShapeLinear)
	if err != nil {
		b.Fatal(err)
	}
	d := data(0, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Check(d)
	}
}

func BenchmarkLinearDockerDefaultDeepSyscall(b *testing.B) {
	f, err := NewFilter(DockerDefault(), ShapeLinear)
	if err != nil {
		b.Fatal(err)
	}
	d := data(288, 5) // accept4: deep in the chain
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Check(d)
	}
}

func BenchmarkTreeDockerDefaultDeepSyscall(b *testing.B) {
	f, err := NewFilter(DockerDefault(), ShapeBinaryTree)
	if err != nil {
		b.Fatal(err)
	}
	d := data(288, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Check(d)
	}
}

func TestNarrowArgumentWidthSemantics(t *testing.T) {
	// read's fd is a C int (4 bytes): values differing only above the
	// declared width are the same fd to the kernel, the compiled filter,
	// the reference Evaluate, and the Draco bitmask machinery.
	read := syscalls.MustByName("read")
	p := &Profile{
		Name:          "width",
		DefaultAction: ActKillProcess,
		Rules: []Rule{{
			Syscall:     read,
			CheckedArgs: []int{0, 2},
			AllowedSets: [][]uint64{{3, 4096}},
		}},
	}
	for _, shape := range []Shape{ShapeLinear, ShapeBinaryTree} {
		f, err := NewFilter(p, shape)
		if err != nil {
			t.Fatal(err)
		}
		probes := []struct {
			fd, count uint64
			want      bool
		}{
			{3, 4096, true},
			{0xdeadbeef00000003, 4096, true}, // same fd in the low word
			{4, 4096, false},                 // different fd
			{3, 0xdeadbeef00001000, false},   // count is size_t: full width
			{3, 4097, false},
		}
		for _, pr := range probes {
			d := data(0, pr.fd, 0x7f0000000000, pr.count)
			got := f.Check(d).Action.Allows()
			ref := p.Evaluate(d).Allows()
			if got != pr.want || ref != pr.want {
				t.Errorf("%v fd=%#x count=%#x: filter=%v eval=%v want %v",
					shape, pr.fd, pr.count, got, ref, pr.want)
			}
		}
	}
}

func TestNarrowWidthFilterIsShorter(t *testing.T) {
	// Narrow arguments compile to one comparison instead of two.
	read := syscalls.MustByName("read")
	p := &Profile{
		Name:          "w",
		DefaultAction: ActKillProcess,
		Rules: []Rule{{
			Syscall:     read,
			CheckedArgs: []int{0}, // fd: 4 bytes
			AllowedSets: [][]uint64{{3}},
		}},
	}
	prog, err := Compile(p, ShapeLinear)
	if err != nil {
		t.Fatal(err)
	}
	// prologue(4) + jeq + [ld, jeq, ret] + reload + default ret = 10.
	if len(prog) != 10 {
		t.Fatalf("narrow-arg filter has %d instructions, want 10:\n%v", len(prog), prog)
	}
}
