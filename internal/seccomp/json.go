package seccomp

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"draco/internal/ebpf"
	"draco/internal/syscalls"
)

// The JSON profile format follows Docker's seccomp profile documents (the
// Moby project format, §II-C): a default action, an architecture list, and
// per-syscall entries with optional argument conditions. The subset
// real-world whitelist profiles use is supported: allow-listed names with
// SCMP_CMP_EQ exact comparisons and SCMP_CMP_MASKED_EQ flag masks (the
// form Docker's clone rule takes).

type jsonProfile struct {
	DefaultAction string        `json:"defaultAction"`
	Architectures []string      `json:"architectures,omitempty"`
	Syscalls      []jsonSyscall `json:"syscalls"`
	// Programmable is a Draco extension to the Docker format: an optional
	// stateful policy program in the internal/ebpf assembly dialect, stacked
	// on top of the whitelist. Docker-format documents without the field
	// parse unchanged.
	Programmable *jsonProgrammable `json:"programmable,omitempty"`
}

type jsonProgrammable struct {
	Name    string        `json:"name"`
	Maps    []jsonMapSpec `json:"maps,omitempty"`
	Program []string      `json:"program"`
}

type jsonMapSpec struct {
	Name string `json:"name"`
	Size uint32 `json:"size"`
}

type jsonSyscall struct {
	Names  []string  `json:"names"`
	Action string    `json:"action"`
	Args   []jsonArg `json:"args,omitempty"`
}

type jsonArg struct {
	Index int    `json:"index"`
	Value uint64 `json:"value"`
	// ValueTwo carries the comparison value for SCMP_CMP_MASKED_EQ
	// (Value is the mask), matching Docker's JSON convention.
	ValueTwo uint64 `json:"valueTwo,omitempty"`
	Op       string `json:"op"`
}

const (
	jsonActAllow       = "SCMP_ACT_ALLOW"
	jsonActErrno       = "SCMP_ACT_ERRNO"
	jsonActKillProcess = "SCMP_ACT_KILL_PROCESS"
	jsonActKillThread  = "SCMP_ACT_KILL_THREAD"
	jsonActTrap        = "SCMP_ACT_TRAP"
	jsonActLog         = "SCMP_ACT_LOG"
	jsonArchX8664      = "SCMP_ARCH_X86_64"
	jsonCmpEq          = "SCMP_CMP_EQ"
	jsonCmpMasked      = "SCMP_CMP_MASKED_EQ"
)

func actionToJSON(a Action) string {
	switch a.Masked() {
	case ActAllow:
		return jsonActAllow
	case ActErrnoBase:
		return jsonActErrno
	case ActKillProcess:
		return jsonActKillProcess
	case ActKillThread:
		return jsonActKillThread
	case ActTrap:
		return jsonActTrap
	case ActLog:
		return jsonActLog
	default:
		return jsonActKillProcess
	}
}

func actionFromJSON(s string) (Action, error) {
	switch s {
	case jsonActAllow:
		return ActAllow, nil
	case jsonActErrno:
		return Errno(1), nil
	case jsonActKillProcess:
		return ActKillProcess, nil
	case jsonActKillThread:
		return ActKillThread, nil
	case jsonActTrap:
		return ActTrap, nil
	case jsonActLog:
		return ActLog, nil
	default:
		return 0, fmt.Errorf("seccomp: unknown action %q", s)
	}
}

// WriteJSON serializes a profile as a Docker-format JSON document.
// ID-only rules are coalesced into a single names entry (as Docker's
// default profile does); each allowed argument tuple becomes its own entry
// with SCMP_CMP_EQ conditions.
func WriteJSON(w io.Writer, p *Profile) error {
	doc := jsonProfile{
		DefaultAction: actionToJSON(p.DefaultAction),
		Architectures: []string{jsonArchX8664},
	}
	var plain []string
	for _, r := range p.Rules {
		if !r.ChecksArgs() {
			plain = append(plain, r.Syscall.Name)
			continue
		}
		for _, set := range r.AllowedSets {
			js := jsonSyscall{Names: []string{r.Syscall.Name}, Action: jsonActAllow}
			for i, idx := range r.CheckedArgs {
				js.Args = append(js.Args, jsonArg{Index: idx, Value: set[i], Op: jsonCmpEq})
			}
			doc.Syscalls = append(doc.Syscalls, js)
		}
		for _, conds := range r.MaskedSets {
			js := jsonSyscall{Names: []string{r.Syscall.Name}, Action: jsonActAllow}
			for _, c := range conds {
				js.Args = append(js.Args, jsonArg{Index: c.ArgIndex, Value: c.Mask, ValueTwo: c.Value, Op: jsonCmpMasked})
			}
			doc.Syscalls = append(doc.Syscalls, js)
		}
	}
	if len(plain) > 0 {
		sort.Strings(plain)
		doc.Syscalls = append([]jsonSyscall{{Names: plain, Action: jsonActAllow}}, doc.Syscalls...)
	}
	if src := p.Programmable; src != nil {
		jp := &jsonProgrammable{Name: src.Name, Program: src.Text}
		for _, m := range src.Maps {
			jp.Maps = append(jp.Maps, jsonMapSpec{Name: m.Name, Size: m.Size})
		}
		doc.Programmable = jp
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON parses a Docker-format JSON profile into the whitelist model.
// Entries for the same syscall merge; argument conditions must be
// SCMP_CMP_EQ or SCMP_CMP_MASKED_EQ on checkable (non-pointer) arguments;
// only allowing entry actions are supported (whitelists).
func ReadJSON(r io.Reader, name string) (*Profile, error) {
	var doc jsonProfile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("seccomp: parsing profile: %w", err)
	}
	def, err := actionFromJSON(doc.DefaultAction)
	if err != nil {
		return nil, err
	}
	if def.Allows() {
		return nil, fmt.Errorf("seccomp: profile default action %q allows; only whitelists are supported", doc.DefaultAction)
	}
	for _, arch := range doc.Architectures {
		if arch != jsonArchX8664 {
			return nil, fmt.Errorf("seccomp: unsupported architecture %q", arch)
		}
	}

	type acc struct {
		info syscalls.Info
		// tuples maps canonical arg-index lists to value tuples.
		checked []int
		sets    [][]uint64
		masked  [][]MaskCond
		idOnly  bool
	}
	rules := map[int]*acc{}
	for _, js := range doc.Syscalls {
		act, err := actionFromJSON(js.Action)
		if err != nil {
			return nil, err
		}
		if !act.Allows() {
			return nil, fmt.Errorf("seccomp: non-allow syscall entry action %q unsupported", js.Action)
		}
		for _, n := range js.Names {
			in, ok := syscalls.ByName(n)
			if !ok {
				return nil, fmt.Errorf("seccomp: unknown syscall %q", n)
			}
			a := rules[in.Num]
			if a == nil {
				a = &acc{info: in}
				rules[in.Num] = a
			}
			if len(js.Args) == 0 {
				a.idOnly = true
				continue
			}
			// An entry is either all exact comparisons or all masked ones.
			if js.Args[0].Op == jsonCmpMasked {
				var conds []MaskCond
				for _, ja := range js.Args {
					if ja.Op != jsonCmpMasked {
						return nil, fmt.Errorf("seccomp: %s mixes comparison kinds in one entry", n)
					}
					conds = append(conds, MaskCond{ArgIndex: ja.Index, Mask: ja.Value, Value: ja.ValueTwo})
				}
				a.masked = append(a.masked, conds)
				continue
			}
			var checked []int
			var vals []uint64
			for _, ja := range js.Args {
				if ja.Op != jsonCmpEq {
					return nil, fmt.Errorf("seccomp: unsupported comparison %q (only %s / %s)", ja.Op, jsonCmpEq, jsonCmpMasked)
				}
				checked = append(checked, ja.Index)
				vals = append(vals, ja.Value)
			}
			if a.checked == nil {
				a.checked = checked
			} else if !equalInts(a.checked, checked) {
				return nil, fmt.Errorf("seccomp: %s has entries checking different argument sets (%v vs %v)", n, a.checked, checked)
			}
			a.sets = append(a.sets, vals)
		}
	}

	p := &Profile{Name: name, DefaultAction: def}
	if jp := doc.Programmable; jp != nil {
		var maps []ebpf.MapSpec
		for _, m := range jp.Maps {
			maps = append(maps, ebpf.MapSpec{Name: m.Name, Size: m.Size})
		}
		progName := jp.Name
		if progName == "" {
			progName = name
		}
		src, err := ebpf.NewSource(progName, maps, jp.Program)
		if err != nil {
			return nil, fmt.Errorf("seccomp: programmable policy: %w", err)
		}
		p.Programmable = src
	}
	for _, a := range rules {
		r := Rule{Syscall: a.info}
		// An ID-only entry for a syscall that also has argument entries
		// means the call is allowed unconditionally; drop the conditions.
		if !a.idOnly && (len(a.sets) > 0 || len(a.masked) > 0) {
			if len(a.sets) > 0 {
				r.CheckedArgs = a.checked
				r.AllowedSets = a.sets
			}
			r.MaskedSets = a.masked
		}
		p.Rules = append(p.Rules, r)
	}
	p.SortRules()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
