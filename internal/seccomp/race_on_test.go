//go:build race

package seccomp_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
