// Package seccomp implements a Seccomp-compatible system call filtering
// engine on top of the classic BPF VM (paper §II-B): the seccomp_data
// layout, filter actions, a profile model (whitelists of system call IDs and
// exact argument values, which is what real-world profiles use), and two
// profile-to-BPF compilers — the classic linear if-chain and the
// binary-tree layout proposed for libseccomp (paper §XII).
package seccomp

import "fmt"

// Action is a seccomp filter return value. The numeric values match the
// kernel's SECCOMP_RET_* action words; when multiple filters are attached,
// the numerically smallest (most restrictive) value wins, exactly as in the
// kernel.
type Action uint32

const (
	// ActKillProcess terminates the whole process.
	ActKillProcess Action = 0x80000000
	// ActKillThread terminates the calling thread.
	ActKillThread Action = 0x00000000
	// ActTrap delivers SIGSYS to the thread.
	ActTrap Action = 0x00030000
	// ActErrnoBase returns an errno to the caller without executing the
	// call; OR in the errno value (use Errno).
	ActErrnoBase Action = 0x00050000
	// ActLog allows the call after logging it.
	ActLog Action = 0x7ffc0000
	// ActAllow lets the system call execute.
	ActAllow Action = 0x7fff0000
)

// Errno builds an errno-returning action.
func Errno(errno uint16) Action {
	return ActErrnoBase | Action(errno)
}

// Masked returns the action with its data bits cleared (SECCOMP_RET_ACTION).
func (a Action) Masked() Action { return a & 0xffff0000 }

// Allows reports whether the action lets the system call run.
func (a Action) Allows() bool {
	m := a.Masked()
	return m == ActAllow || m == ActLog
}

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a.Masked() {
	case ActKillProcess:
		return "kill_process"
	case ActKillThread:
		return "kill_thread"
	case ActTrap:
		return "trap"
	case ActErrnoBase:
		return fmt.Sprintf("errno(%d)", uint16(a))
	case ActLog:
		return "log"
	case ActAllow:
		return "allow"
	default:
		return fmt.Sprintf("action(%#x)", uint32(a))
	}
}

// precedence returns the kernel's action precedence: lower ranks win when
// multiple filters are attached (KILL_PROCESS > KILL_THREAD > TRAP > ERRNO >
// LOG > ALLOW).
func (a Action) precedence() int {
	switch a.Masked() {
	case ActKillProcess:
		return 0
	case ActKillThread:
		return 1
	case ActTrap:
		return 2
	case ActErrnoBase:
		return 3
	case ActLog:
		return 4
	case ActAllow:
		return 5
	default:
		return 6
	}
}

// Combine merges the results of stacked filters: the kernel keeps the
// highest-precedence (most restrictive) action.
func Combine(a, b Action) Action {
	if a.precedence() <= b.precedence() {
		return a
	}
	return b
}
