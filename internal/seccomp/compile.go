package seccomp

import (
	"fmt"

	"draco/internal/bpf"
)

// Shape selects the code layout a profile compiles to.
type Shape int

const (
	// ShapeLinear is the classic libseccomp layout: a sequential chain of
	// per-syscall checks (Figure 1's "long list of if statements").
	ShapeLinear Shape = iota
	// ShapeBinaryTree is the libseccomp binary-tree optimization
	// (Hromatka, paper §XII): a binary search over syscall numbers.
	ShapeBinaryTree
)

func (s Shape) String() string {
	if s == ShapeBinaryTree {
		return "binary-tree"
	}
	return "linear"
}

// Compile lowers a profile to a classic BPF program with the given shape.
func Compile(p *Profile, shape Shape) (bpf.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cp := *p
	cp.Rules = append([]Rule(nil), p.Rules...)
	cp.SortRules()
	var prog bpf.Program
	switch shape {
	case ShapeLinear:
		prog = compileLinear(&cp)
	case ShapeBinaryTree:
		prog = compileTree(&cp)
	default:
		return nil, fmt.Errorf("seccomp: unknown shape %d", shape)
	}
	// Validate against the extended instruction limit: syscall-complete
	// profiles with long argument-value tails exceed the stock 4096-entry
	// cap (see bpf.ExtendedMaxInsns).
	if err := prog.ValidateMax(bpf.ExtendedMaxInsns); err != nil {
		return nil, fmt.Errorf("seccomp: compiled program invalid: %w", err)
	}
	return prog, nil
}

// prologue checks the architecture token and loads the syscall number,
// exactly as every real seccomp filter begins.
func prologue(def Action) bpf.Program {
	return bpf.Program{
		bpf.Stmt(bpf.ClassLD|bpf.ModeABS|bpf.SizeW, OffArch),
		bpf.Jump(bpf.ClassJMP|bpf.JmpJEQ|bpf.SrcK, AuditArchX8664, 1, 0),
		bpf.Stmt(bpf.ClassRET, uint32(ActKillProcess)),
		bpf.Stmt(bpf.ClassLD|bpf.ModeABS|bpf.SizeW, OffNr),
	}
}

func compileLinear(p *Profile) bpf.Program {
	prog := prologue(p.DefaultAction)
	for _, r := range p.Rules {
		prog = append(prog, linearRule(r)...)
	}
	prog = append(prog, bpf.Stmt(bpf.ClassRET, uint32(p.DefaultAction)))
	return prog
}

// linearRule emits the block for one rule. On entry and on every exit path
// that continues to the next rule, A holds the syscall number.
func linearRule(r Rule) bpf.Program {
	if !r.ChecksArgs() {
		return bpf.Program{
			bpf.Jump(bpf.ClassJMP|bpf.JmpJEQ|bpf.SrcK, uint32(r.Syscall.Num), 0, 1),
			bpf.Stmt(bpf.ClassRET, uint32(ActAllow)),
		}
	}
	// Body: argument-set checks followed by a reload of the syscall number
	// (argument loads clobber A, and the next rule expects nr in A).
	var body bpf.Program
	for _, set := range r.AllowedSets {
		body = append(body, argSetCheck(r, set)...)
	}
	for _, conds := range r.MaskedSets {
		body = append(body, maskedSetCheck(r, conds)...)
	}
	body = append(body, bpf.Stmt(bpf.ClassLD|bpf.ModeABS|bpf.SizeW, OffNr))
	// Header: skip the whole body (including the reload) when the syscall
	// number does not match. Use a ja trampoline when the body is too long
	// for an 8-bit jump offset.
	if len(body) <= 255 {
		return append(bpf.Program{
			bpf.Jump(bpf.ClassJMP|bpf.JmpJEQ|bpf.SrcK, uint32(r.Syscall.Num), 0, uint8(len(body))),
		}, body...)
	}
	return append(bpf.Program{
		bpf.Jump(bpf.ClassJMP|bpf.JmpJEQ|bpf.SrcK, uint32(r.Syscall.Num), 1, 0),
		bpf.Jump(bpf.ClassJMP|bpf.JmpJA, uint32(len(body)), 0, 0),
	}, body...)
}

// argSetCheck emits the comparison ladder for one allowed argument tuple:
// for each checked argument, compare the low 32-bit word and — only for
// arguments wider than a C int (widths.go) — the high word as well (cBPF is
// a 32-bit machine; real libseccomp conditions on int-typed arguments
// compare one word the same way). Any mismatch jumps past the set; a full
// match returns ALLOW.
func argSetCheck(r Rule, set []uint64) bpf.Program {
	checked := r.CheckedArgs
	// Total set length: 2 instructions per narrow argument, 4 per wide
	// one, plus the final RET. Max 6*4+1 = 25, well within 8-bit offsets.
	setLen := 1
	wide := make([]bool, len(checked))
	for i, idx := range checked {
		wide[i] = r.Syscall.ArgWidth(idx) > 4
		if wide[i] {
			setLen += 4
		} else {
			setLen += 2
		}
	}
	prog := make(bpf.Program, 0, setLen)
	pos := 0 // index within the set
	for i, idx := range checked {
		lo := uint32(set[i])
		prog = append(prog,
			bpf.Stmt(bpf.ClassLD|bpf.ModeABS|bpf.SizeW, ArgLowOff(idx)),
			bpf.Jump(bpf.ClassJMP|bpf.JmpJEQ|bpf.SrcK, lo, 0, uint8(setLen-(pos+2))),
		)
		pos += 2
		if wide[i] {
			hi := uint32(set[i] >> 32)
			prog = append(prog,
				bpf.Stmt(bpf.ClassLD|bpf.ModeABS|bpf.SizeW, ArgHighOff(idx)),
				bpf.Jump(bpf.ClassJMP|bpf.JmpJEQ|bpf.SrcK, hi, 0, uint8(setLen-(pos+2))),
			)
			pos += 2
		}
	}
	prog = append(prog, bpf.Stmt(bpf.ClassRET, uint32(ActAllow)))
	return prog
}

// maskedSetCheck emits one masked-comparison conjunction: for each
// condition, load the argument word(s), AND with the mask, and compare —
// libseccomp's SCMP_CMP_MASKED_EQ lowering. A conjunction that fully holds
// returns ALLOW; any failure falls through to the next set.
func maskedSetCheck(r Rule, conds []MaskCond) bpf.Program {
	// Condition cost: 3 instructions per compared word.
	setLen := 1
	wide := make([]bool, len(conds))
	for i, c := range conds {
		wide[i] = r.Syscall.ArgWidth(c.ArgIndex) > 4 || c.Mask>>32 != 0
		if wide[i] {
			setLen += 6
		} else {
			setLen += 3
		}
	}
	prog := make(bpf.Program, 0, setLen)
	pos := 0
	for i, c := range conds {
		prog = append(prog,
			bpf.Stmt(bpf.ClassLD|bpf.ModeABS|bpf.SizeW, ArgLowOff(c.ArgIndex)),
			bpf.Stmt(bpf.ClassALU|bpf.ALUAnd|bpf.SrcK, uint32(c.Mask)),
			bpf.Jump(bpf.ClassJMP|bpf.JmpJEQ|bpf.SrcK, uint32(c.Value), 0, uint8(setLen-(pos+3))),
		)
		pos += 3
		if wide[i] {
			prog = append(prog,
				bpf.Stmt(bpf.ClassLD|bpf.ModeABS|bpf.SizeW, ArgHighOff(c.ArgIndex)),
				bpf.Stmt(bpf.ClassALU|bpf.ALUAnd|bpf.SrcK, uint32(c.Mask>>32)),
				bpf.Jump(bpf.ClassJMP|bpf.JmpJEQ|bpf.SrcK, uint32(c.Value>>32), 0, uint8(setLen-(pos+3))),
			)
			pos += 3
		}
	}
	prog = append(prog, bpf.Stmt(bpf.ClassRET, uint32(ActAllow)))
	return prog
}

// compileTree emits a binary search over syscall numbers with per-syscall
// leaf blocks. Internal nodes use a jge + ja pair so subtree displacements
// are not limited to 8 bits.
func compileTree(p *Profile) bpf.Program {
	prog := prologue(p.DefaultAction)
	prog = append(prog, treeNode(p.Rules, p.DefaultAction)...)
	return prog
}

func treeNode(rules []Rule, def Action) bpf.Program {
	if len(rules) == 0 {
		return bpf.Program{bpf.Stmt(bpf.ClassRET, uint32(def))}
	}
	if len(rules) == 1 {
		return treeLeaf(rules[0], def)
	}
	mid := len(rules) / 2
	left := treeNode(rules[:mid], def)
	right := treeNode(rules[mid:], def)
	pivot := uint32(rules[mid].Syscall.Num)
	// jge pivot: taken -> the ja to the right subtree; not taken -> left.
	node := bpf.Program{
		bpf.Jump(bpf.ClassJMP|bpf.JmpJGE|bpf.SrcK, pivot, 0, 1),
		bpf.Jump(bpf.ClassJMP|bpf.JmpJA, uint32(len(left)), 0, 0),
	}
	node = append(node, left...)
	node = append(node, right...)
	return node
}

// treeLeaf emits the terminal block for one rule. Both outcomes return, so
// A may be freely clobbered by argument loads.
func treeLeaf(r Rule, def Action) bpf.Program {
	if !r.ChecksArgs() {
		return bpf.Program{
			bpf.Jump(bpf.ClassJMP|bpf.JmpJEQ|bpf.SrcK, uint32(r.Syscall.Num), 0, 1),
			bpf.Stmt(bpf.ClassRET, uint32(ActAllow)),
			bpf.Stmt(bpf.ClassRET, uint32(def)),
		}
	}
	var body bpf.Program
	for _, set := range r.AllowedSets {
		body = append(body, argSetCheck(r, set)...)
	}
	for _, conds := range r.MaskedSets {
		body = append(body, maskedSetCheck(r, conds)...)
	}
	body = append(body, bpf.Stmt(bpf.ClassRET, uint32(def)))
	if len(body)-1 <= 255 {
		leaf := bpf.Program{
			// On mismatch jump to the trailing default return.
			bpf.Jump(bpf.ClassJMP|bpf.JmpJEQ|bpf.SrcK, uint32(r.Syscall.Num), 0, uint8(len(body)-1)),
		}
		return append(leaf, body...)
	}
	leaf := bpf.Program{
		bpf.Jump(bpf.ClassJMP|bpf.JmpJEQ|bpf.SrcK, uint32(r.Syscall.Num), 1, 0),
		bpf.Jump(bpf.ClassJMP|bpf.JmpJA, uint32(len(body)-1), 0, 0),
	}
	return append(leaf, body...)
}
