package seccomp

import (
	"draco/internal/syscalls"
)

// dockerBlocked is the set of system calls Docker's default profile (the
// Moby project profile, §II-C) denies: obscure, privileged, or
// kernel-surface-expanding calls. Everything else in the syscall table is
// allowed, which is how the real JSON profile is structured.
var dockerBlocked = []string{
	"acct", "add_key", "afs_syscall", "bpf", "clock_adjtime",
	"clock_settime", "create_module", "delete_module", "finit_module",
	"get_kernel_syms", "get_mempolicy", "getpmsg", "init_module",
	"ioperm", "iopl", "kcmp", "kexec_file_load", "kexec_load", "keyctl",
	"lookup_dcookie", "mbind", "mount", "move_mount", "move_pages",
	"name_to_handle_at", "nfsservctl", "open_by_handle_at", "open_tree",
	"perf_event_open", "pivot_root", "process_vm_readv",
	"process_vm_writev", "ptrace", "putpmsg", "query_module", "quotactl",
	"reboot", "request_key", "security", "set_mempolicy", "setns",
	"settimeofday", "swapoff", "swapon", "sysfs", "_sysctl", "tuxcall",
	"umount2", "unshare", "uselib", "userfaultfd", "ustat", "vhangup",
	"vserver", "fsopen", "fsconfig", "fsmount", "fspick",
}

// PersonalityAllowed are the five persona values Docker's default profile
// admits for the personality system call.
var PersonalityAllowed = []uint64{0x0, 0x0008, 0x20000, 0x20008, 0xffffffff}

// CloneAllowed are the two clone flag sets the default profile admits in
// this reproduction: the common glibc fork() and pthread_create() flag
// combinations. (The real profile expresses clone as a flag-mask condition;
// Seccomp whitelists in this repo are exact-value, so the two ubiquitous
// values stand in. Together with PersonalityAllowed this yields the paper's
// "7 unique argument values of the clone and personality system calls".)
var CloneAllowed = []uint64{
	0x01200011, // fork: SIGCHLD | CLONE_CHILD_SETTID | CLONE_CHILD_CLEARTID
	0x003d0f00, // pthread_create: CLONE_VM|FS|FILES|SIGHAND|THREAD|SYSVSEM|SETTLS|PARENT_SETTID|CHILD_CLEARTID
}

// DockerDefault builds the docker-default profile: a broad syscall-ID
// whitelist with argument checks only on personality and clone.
func DockerDefault() *Profile {
	blocked := map[string]bool{}
	for _, n := range dockerBlocked {
		blocked[n] = true
	}
	p := &Profile{Name: "docker-default", DefaultAction: Errno(1)} // EPERM
	for _, in := range syscalls.All() {
		if blocked[in.Name] {
			continue
		}
		switch in.Name {
		case "personality":
			p.Rules = append(p.Rules, Rule{
				Syscall:     in,
				CheckedArgs: []int{0},
				AllowedSets: sets1(PersonalityAllowed),
			})
		case "clone":
			p.Rules = append(p.Rules, Rule{
				Syscall:     in,
				CheckedArgs: []int{0},
				AllowedSets: sets1(CloneAllowed),
			})
		default:
			p.Rules = append(p.Rules, Rule{Syscall: in})
		}
	}
	p.SortRules()
	return p
}

func sets1(values []uint64) [][]uint64 {
	out := make([][]uint64, len(values))
	for i, v := range values {
		out[i] = []uint64{v}
	}
	return out
}

// gvisorSyscalls is the Sentry's host-syscall whitelist (74 calls, §II-C).
var gvisorSyscalls = []string{
	"read", "write", "close", "fstat", "lseek", "mmap", "mprotect",
	"munmap", "brk", "rt_sigaction", "rt_sigprocmask", "rt_sigreturn",
	"ioctl", "pread64", "pwrite64", "readv", "writev", "sched_yield",
	"mremap", "madvise", "shutdown", "nanosleep", "getpid", "socket",
	"connect", "accept", "sendto", "recvfrom", "sendmsg", "recvmsg",
	"bind", "listen", "getsockname", "getpeername", "socketpair",
	"setsockopt", "getsockopt", "clone", "execve", "exit", "wait4",
	"kill", "fcntl", "fsync", "fdatasync", "ftruncate", "getcwd",
	"chdir", "fchdir", "fchmod", "fchown", "umask", "gettimeofday",
	"getrlimit", "sigaltstack", "arch_prctl", "gettid", "futex",
	"sched_getaffinity", "epoll_create", "getdents64",
	"clock_gettime", "exit_group", "epoll_wait", "epoll_ctl", "tgkill",
	"openat", "newfstatat", "unlinkat", "ppoll", "dup3", "pipe2",
	"getrandom", "memfd_create",
}

// GVisorDefault reconstructs the gVisor Sentry profile: 74 syscalls with
// roughly 130 argument checks. The precise gVisor argument conditions are
// mask/compare rules on specific calls; this reconstruction distributes
// exact-value checks over the checkable (non-pointer) arguments of the
// whitelist in a deterministic way until the published count is reached.
func GVisorDefault() *Profile {
	return synthesizeArgChecks("gvisor-default", gvisorSyscalls, 130, 2)
}

// firecrackerSyscalls is the microVM whitelist (37 calls, §II-C).
var firecrackerSyscalls = []string{
	"read", "write", "open", "close", "stat", "fstat", "lseek", "mmap",
	"mprotect", "munmap", "brk", "rt_sigaction", "rt_sigprocmask",
	"rt_sigreturn", "ioctl", "readv", "writev", "pipe", "dup",
	"socket", "accept", "bind", "listen", "exit", "fcntl", "timerfd_create",
	"timerfd_settime", "epoll_create1", "epoll_ctl", "epoll_wait",
	"eventfd2", "futex", "exit_group", "openat", "recvfrom", "mremap",
	"madvise",
}

// Firecracker reconstructs the AWS Firecracker profile: 37 syscalls and 8
// argument checks.
func Firecracker() *Profile {
	return synthesizeArgChecks("firecracker", firecrackerSyscalls, 8, 1)
}

// synthesizeArgChecks builds a whitelist over names and deterministically
// adds exact-value checks on checkable arguments until argChecks
// (syscall,arg-index) pairs are checked, with valuesPerArg allowed values
// each.
func synthesizeArgChecks(name string, names []string, argChecks, valuesPerArg int) *Profile {
	p := &Profile{Name: name, DefaultAction: ActKillThread}
	remaining := argChecks
	for _, n := range names {
		in := syscalls.MustByName(n)
		r := Rule{Syscall: in}
		if remaining > 0 {
			checked := in.CheckedArgs()
			if len(checked) > remaining {
				checked = checked[:remaining]
			}
			if len(checked) > 0 {
				r.CheckedArgs = checked
				for v := 0; v < valuesPerArg; v++ {
					set := make([]uint64, len(checked))
					for i := range set {
						// Deterministic, distinct, small values typical of
						// fd/flag/cmd arguments.
						set[i] = uint64(v*8 + i)
					}
					r.AllowedSets = append(r.AllowedSets, set)
				}
				remaining -= len(checked)
			}
		}
		p.Rules = append(p.Rules, r)
	}
	p.SortRules()
	return p
}

// StripArgs returns a copy of the profile with all argument checks removed:
// the syscall-noargs variant of an application profile (§IV-A).
func StripArgs(p *Profile) *Profile {
	out := &Profile{Name: p.Name + "-noargs", DefaultAction: p.DefaultAction}
	for _, r := range p.Rules {
		out.Rules = append(out.Rules, Rule{Syscall: r.Syscall})
	}
	return out
}

// LinuxSyscallCount returns the size of the full syscall interface, the
// "linux" bar of Figure 15(a).
func LinuxSyscallCount() int { return syscalls.Count() }

// CloneDeniedNamespaceBits are the namespace-creating clone flags the real
// Moby profile denies via SCMP_CMP_MASKED_EQ: CLONE_NEWUSER, CLONE_NEWPID,
// CLONE_NEWNET, CLONE_NEWIPC, CLONE_NEWUTS, CLONE_NEWNS, CLONE_NEWCGROUP.
const CloneDeniedNamespaceBits = 0x7E020000

// DockerDefaultMasked is DockerDefault with the authentic clone rule: the
// real profile does not enumerate clone flag values, it allows clone
// whenever (flags & CloneDeniedNamespaceBits) == 0. The exact-value variant
// in DockerDefault preserves the paper's "7 unique argument values"
// accounting; this variant preserves the deployed semantics.
func DockerDefaultMasked() *Profile {
	p := DockerDefault()
	for i := range p.Rules {
		if p.Rules[i].Syscall.Name != "clone" {
			continue
		}
		p.Rules[i] = Rule{
			Syscall: p.Rules[i].Syscall,
			MaskedSets: [][]MaskCond{
				{{ArgIndex: 0, Mask: CloneDeniedNamespaceBits, Value: 0}},
			},
		}
	}
	return p
}
