package seccomp

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON feeds arbitrary documents to the profile parser: it must
// reject or accept without panicking, and anything it accepts must
// re-serialize and re-parse to the same accounting.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteJSON(&seed, DockerDefault()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"defaultAction": "SCMP_ACT_ERRNO", "syscalls": []}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, doc string) {
		p, err := ReadJSON(strings.NewReader(doc), "fuzz")
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteJSON(&out, p); err != nil {
			t.Fatalf("accepted profile fails to serialize: %v", err)
		}
		back, err := ReadJSON(&out, "fuzz2")
		if err != nil {
			t.Fatalf("serialized profile fails to parse: %v", err)
		}
		if back.NumSyscalls() != p.NumSyscalls() || back.NumArgsChecked() != p.NumArgsChecked() {
			t.Fatalf("roundtrip drift: %d/%d -> %d/%d",
				p.NumSyscalls(), p.NumArgsChecked(), back.NumSyscalls(), back.NumArgsChecked())
		}
	})
}
