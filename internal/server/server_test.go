package server_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"draco/internal/profilegen"
	"draco/internal/seccomp"
	"draco/internal/server"
	"draco/internal/server/client"
	"draco/internal/syscalls"
	"draco/internal/workloads"
)

func newTestServer(t testing.TB, opts server.Options) (*httptest.Server, *client.Client) {
	t.Helper()
	ts := httptest.NewServer(server.New(opts).Handler())
	t.Cleanup(ts.Close)
	return ts, client.New(ts.URL, ts.Client())
}

func profileJSON(t testing.TB, p *seccomp.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := seccomp.WriteJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckEndpoint(t *testing.T) {
	_, c := newTestServer(t, server.Options{Shards: 4, DefaultProfile: seccomp.DockerDefault()})
	ctx := context.Background()

	// First check: a miss (not cached) resolved by the filter chain — under
	// the default bitmap exec tier an ID-only syscall like read resolves
	// through the constant-action bitmap, so zero BPF instructions execute
	// even on the miss. Second: served from the cache.
	res, err := c.Check(ctx, server.CheckRequest{Tenant: "t1", Syscall: "read", Args: []uint64{3, 0, 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Allowed || res.Cached || res.FilterInstructions != 0 {
		t.Fatalf("first check: %+v", res)
	}
	res, err = c.Check(ctx, server.CheckRequest{Tenant: "t1", Syscall: "read", Args: []uint64{3, 0, 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Allowed || !res.Cached || res.FilterInstructions != 0 {
		t.Fatalf("second check: %+v", res)
	}

	// Docker's default denies unshare-style syscalls not in the whitelist.
	res, err = c.Check(ctx, server.CheckRequest{Tenant: "t1", Syscall: "init_module"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Allowed {
		t.Fatalf("init_module allowed under docker-default: %+v", res)
	}

	// By number works too.
	read := syscalls.MustByName("read").Num
	res, err = c.Check(ctx, server.CheckRequest{Tenant: "t1", Num: &read, Args: []uint64{3, 0, 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Allowed {
		t.Fatalf("check by number: %+v", res)
	}
}

func TestCheckRequestValidation(t *testing.T) {
	ts, c := newTestServer(t, server.Options{DefaultProfile: seccomp.DockerDefault()})
	ctx := context.Background()

	cases := []server.CheckRequest{
		{Tenant: "t", Syscall: "no_such_syscall"},
		{Tenant: "t"},                // neither name nor number
		{Tenant: "t", Num: intp(-1)}, // negative number
		{Tenant: "t", Num: intp(syscalls.MaxNum() + 100)},       // out-of-range number
		{Tenant: "t", Syscall: "read", Num: intp(999)},          // name/number mismatch
		{Tenant: "t", Syscall: "read", Args: make([]uint64, 7)}, // too many args
		{Syscall: "read"}, // missing tenant
	}
	for i, req := range cases {
		if _, err := c.Check(ctx, req); err == nil {
			t.Errorf("case %d (%+v): expected error", i, req)
		}
	}

	// Malformed JSON body → 400.
	resp, err := http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d", resp.StatusCode)
	}
}

func intp(v int) *int { return &v }

func TestUnknownTenantWithoutDefault(t *testing.T) {
	_, c := newTestServer(t, server.Options{}) // no default profile
	ctx := context.Background()
	if _, err := c.Check(ctx, server.CheckRequest{Tenant: "ghost", Syscall: "read"}); err == nil {
		t.Fatal("check on unknown tenant succeeded without a default profile")
	}
	if _, err := c.Stats(ctx, "ghost"); err == nil {
		t.Fatal("stats on unknown tenant succeeded")
	}
}

func TestProfileUploadAndHotSwap(t *testing.T) {
	_, c := newTestServer(t, server.Options{Shards: 4})
	ctx := context.Background()

	readOnly := &seccomp.Profile{
		Name:          "read-only",
		DefaultAction: seccomp.Errno(1),
		Rules:         []seccomp.Rule{{Syscall: syscalls.MustByName("read")}},
	}
	pr, err := c.PutProfile(ctx, "svc", bytes.NewReader(profileJSON(t, readOnly)))
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Created || pr.Generation != 1 {
		t.Fatalf("first upload: %+v", pr)
	}

	res, err := c.Check(ctx, server.CheckRequest{Tenant: "svc", Syscall: "write"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Allowed {
		t.Fatalf("write allowed under read-only: %+v", res)
	}

	// Hot-swap to a profile that also allows write.
	both := &seccomp.Profile{
		Name:          "read-write",
		DefaultAction: seccomp.Errno(1),
		Rules: []seccomp.Rule{
			{Syscall: syscalls.MustByName("read")},
			{Syscall: syscalls.MustByName("write")},
		},
	}
	pr, err = c.PutProfile(ctx, "svc", bytes.NewReader(profileJSON(t, both)))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Created || pr.Generation != 2 {
		t.Fatalf("second upload: %+v", pr)
	}
	res, err = c.Check(ctx, server.CheckRequest{Tenant: "svc", Syscall: "write"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Allowed {
		t.Fatalf("write denied after hot swap: %+v", res)
	}

	// Invalid profile documents are rejected and leave the tenant intact.
	if _, err := c.PutProfile(ctx, "svc", strings.NewReader(`{"defaultAction":"SCMP_ACT_ALLOW","syscalls":[]}`)); err == nil {
		t.Fatal("allow-by-default profile accepted")
	}
	st, err := c.Stats(ctx, "svc")
	if err != nil {
		t.Fatal(err)
	}
	if st.Profile != "svc" || st.Generation != 2 {
		t.Fatalf("tenant state changed after rejected upload: %+v", st)
	}
}

// TestEngineSelection drives the ?engine= surface: per-tenant engine choice
// on profile upload and on auto-provision, conflict detection, and mechanism
// switching by re-upload.
func TestEngineSelection(t *testing.T) {
	ts, c := newTestServer(t, server.Options{Shards: 4, DefaultProfile: seccomp.DockerDefault()})
	ctx := context.Background()

	// Upload with an explicit engine: the tenant runs draco-sw (a
	// sequential engine the server wraps for sharing).
	pr, err := c.PutProfileEngine(ctx, "sw", "draco-sw", bytes.NewReader(profileJSON(t, seccomp.DockerDefault())))
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Created || pr.Engine != "draco-sw" {
		t.Fatalf("upload with engine: %+v", pr)
	}
	res, err := c.Check(ctx, server.CheckRequest{Tenant: "sw", Syscall: "read"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Allowed || res.Cached {
		t.Fatalf("first draco-sw check: %+v", res)
	}
	res, err = c.Check(ctx, server.CheckRequest{Tenant: "sw", Syscall: "read"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatalf("second draco-sw check not cached: %+v", res)
	}
	st, err := c.Stats(ctx, "sw")
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine != "draco-sw" || st.Checks != 2 {
		t.Fatalf("draco-sw stats: %+v", st)
	}

	// filter-only never caches.
	if _, err := c.PutProfileEngine(ctx, "fo", "filter-only", bytes.NewReader(profileJSON(t, seccomp.DockerDefault()))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err = c.Check(ctx, server.CheckRequest{Tenant: "fo", Syscall: "read"})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Allowed || res.Cached {
			t.Fatalf("filter-only check %d: %+v", i, res)
		}
	}

	// Auto-provision with ?engine= on the check URL itself.
	resp, err := http.Post(ts.URL+"/v1/check?engine=draco-sw", "application/json",
		strings.NewReader(`{"tenant":"auto","syscall":"read"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auto-provision with engine: HTTP %d", resp.StatusCode)
	}
	if st, err = c.Stats(ctx, "auto"); err != nil || st.Engine != "draco-sw" {
		t.Fatalf("auto-provisioned engine: %+v err=%v", st, err)
	}

	// A conflicting ?engine= on an existing tenant is rejected.
	resp, err = http.Post(ts.URL+"/v1/check?engine=draco-concurrent", "application/json",
		strings.NewReader(`{"tenant":"auto","syscall":"read"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("conflicting engine accepted on check")
	}

	// Unknown engines are rejected everywhere.
	if _, err := c.PutProfileEngine(ctx, "x", "warp-drive", bytes.NewReader(profileJSON(t, seccomp.DockerDefault()))); err == nil {
		t.Fatal("unknown engine accepted on upload")
	}
	resp, err = http.Post(ts.URL+"/v1/check?engine=warp-drive", "application/json",
		strings.NewReader(`{"tenant":"fresh","syscall":"read"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("unknown engine accepted on check")
	}

	// Re-uploading with a different engine rebuilds the tenant on the new
	// mechanism: stats and generation restart.
	pr, err = c.PutProfileEngine(ctx, "sw", "draco-concurrent", bytes.NewReader(profileJSON(t, seccomp.DockerDefault())))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Created || pr.Engine != "draco-concurrent" || pr.Generation != 1 {
		t.Fatalf("engine switch: %+v", pr)
	}
	if st, err = c.Stats(ctx, "sw"); err != nil || st.Engine != "draco-concurrent" || st.Checks != 0 {
		t.Fatalf("stats after engine switch: %+v err=%v", st, err)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, c := newTestServer(t, server.Options{Shards: 4, DefaultProfile: seccomp.DockerDefault()})
	ctx := context.Background()

	calls := []server.BatchCall{
		{Syscall: "read", Args: []uint64{3, 0, 4096}},
		{Syscall: "write", Args: []uint64{1, 0, 17}},
		{Syscall: "init_module"},
		{Syscall: "read", Args: []uint64{3, 0, 4096}},
	}
	results, err := c.CheckBatch(ctx, server.BatchRequest{Tenant: "b", Calls: calls})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(calls) {
		t.Fatalf("%d results for %d calls", len(results), len(calls))
	}
	if !results[0].Allowed || !results[1].Allowed || results[2].Allowed || !results[3].Allowed {
		t.Fatalf("decisions: %+v", results)
	}
	// The duplicate read inside one batch is served from the cache.
	if !results[3].Cached {
		t.Fatalf("duplicate call in batch not cached: %+v", results[3])
	}

	// Oversized batches are rejected.
	big := server.BatchRequest{Tenant: "b", Calls: make([]server.BatchCall, server.MaxBatch+1)}
	for i := range big.Calls {
		big.Calls[i] = server.BatchCall{Syscall: "read"}
	}
	if _, err := c.CheckBatch(ctx, big); err == nil {
		t.Fatal("oversized batch accepted")
	}
	// A bad call inside a batch fails the whole request.
	if _, err := c.CheckBatch(ctx, server.BatchRequest{Tenant: "b", Calls: []server.BatchCall{{Syscall: "bogus"}}}); err == nil {
		t.Fatal("bad call in batch accepted")
	}
}

func TestStatsAndMetrics(t *testing.T) {
	_, c := newTestServer(t, server.Options{Shards: 4, DefaultProfile: seccomp.DockerDefault()})
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		if _, err := c.Check(ctx, server.CheckRequest{Tenant: "m", Syscall: "read", Args: []uint64{3}}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	if st.Checks != 10 || st.FilterRuns != 1 || st.SPTHits != 9 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Engine != server.DefaultEngine || st.Shards != 4 || st.Routing != "syscall" || st.Profile != seccomp.DockerDefault().Name {
		t.Fatalf("stats metadata: %+v", st)
	}

	names, err := c.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "m" {
		t.Fatalf("tenants: %v", names)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dracod_checks_total 10",
		"dracod_cache_hits_total 9",
		"dracod_filter_runs_total 1",
		"dracod_tenants 1",
		// Observation-layer series fed by the engine.Observer hook.
		"dracod_observed_checks_total 10",
		"dracod_observed_cache_hits_total 9",
		// The 9 steady-state checks of an ID-only constant syscall are
		// served by the concurrent engine's lock-free decision plane.
		`dracod_check_class_total{class="fast-hit"} 9`,
		// The first check resolved through the constant-action bitmap
		// (the locked warm-up that seeds the plane).
		`dracod_check_class_total{class="bitmap-hit"} 1`,
		`dracod_engine_tenants{engine="draco-concurrent"} 1`,
		`dracod_engine_checks_total{engine="draco-concurrent"} 10`,
		`dracod_engine_checks_total{engine="draco-sw"} 0`,
		`dracod_http_requests_total{endpoint="check"} 10`,
		`dracod_http_latency_ns{endpoint="check",quantile="0.99"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics page missing %q:\n%s", want, text)
		}
	}
}

// TestBatchThroughputAdvantage is the acceptance check that batch checking
// at size 64 sustains at least 2x the single-call endpoint's throughput,
// measured over the same HTTP transport.
func TestBatchThroughputAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison skipped in -short")
	}
	w := workloads.All()[0]
	tr := w.Generate(20_000, 9)
	p := profilegen.Complete(w.Name, tr, profilegen.Options{IncludeRuntime: true})
	ts, c := newTestServer(t, server.Options{Shards: 4, DefaultProfile: p})
	_ = ts
	ctx := context.Background()

	single := func(n int) {
		for i := 0; i < n; i++ {
			ev := tr[i%len(tr)]
			if _, err := c.Check(ctx, server.CheckRequest{Tenant: "s", Num: &ev.SID, Args: ev.Args[:]}); err != nil {
				t.Fatal(err)
			}
		}
	}
	batched := func(n int) {
		const size = 64
		for off := 0; off < n; off += size {
			calls := make([]server.BatchCall, size)
			for j := range calls {
				ev := tr[(off+j)%len(tr)]
				calls[j] = server.BatchCall{Num: intp(ev.SID), Args: ev.Args[:]}
			}
			if _, err := c.CheckBatch(ctx, server.BatchRequest{Tenant: "b", Calls: calls}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Warm both tenants and the HTTP connections.
	single(256)
	batched(256)

	const checks = 4096
	singlePerSec := rate(t, checks, func() { single(checks) })
	batchPerSec := rate(t, checks, func() { batched(checks) })
	t.Logf("single: %.0f checks/sec, batch64: %.0f checks/sec (%.1fx)",
		singlePerSec, batchPerSec, batchPerSec/singlePerSec)
	if batchPerSec < 2*singlePerSec {
		t.Fatalf("batch throughput %.0f/s < 2x single %.0f/s", batchPerSec, singlePerSec)
	}
}

func rate(t *testing.T, checks int, f func()) float64 {
	t.Helper()
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	perOp := res.T.Seconds() / float64(res.N)
	return float64(checks) / perOp
}

// BenchmarkServerCheck measures HTTP round-trip throughput of the single
// and batch endpoints; results/concurrent_baseline.json records a run.
func BenchmarkServerCheck(b *testing.B) {
	w := workloads.All()[0]
	tr := w.Generate(20_000, 9)
	p := profilegen.Complete(w.Name, tr, profilegen.Options{IncludeRuntime: true})

	bench := func(b *testing.B, batchSize int) {
		ts := httptest.NewServer(server.New(server.Options{Shards: 4, DefaultProfile: p}).Handler())
		defer ts.Close()
		c := client.New(ts.URL, ts.Client())
		ctx := context.Background()
		var cursor atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			off := int(cursor.Add(1)) * 7919
			for pb.Next() {
				if batchSize <= 1 {
					ev := tr[off%len(tr)]
					if _, err := c.Check(ctx, server.CheckRequest{Tenant: "t", Num: &ev.SID, Args: ev.Args[:]}); err != nil {
						b.Fatal(err)
					}
					off++
					continue
				}
				calls := make([]server.BatchCall, batchSize)
				for j := range calls {
					ev := tr[(off+j)%len(tr)]
					calls[j] = server.BatchCall{Num: intp(ev.SID), Args: ev.Args[:]}
				}
				if _, err := c.CheckBatch(ctx, server.BatchRequest{Tenant: "t", Calls: calls}); err != nil {
					b.Fatal(err)
				}
				off += batchSize
			}
		})
	}
	b.Run("single", func(b *testing.B) { bench(b, 1) })
	b.Run("batch64", func(b *testing.B) { bench(b, 64) })
}
