package server

// The transport-independent session layer. PR-4 built the adaptive batch
// coalescer into the wire front end; this file lifts it — together with
// frame dispatch, tenant resolution, and response routing — out of any one
// transport, so the HTTP JSON API, the TCP wire protocol, and the
// shared-memory rings are three front ends over one check path.
//
// The split of responsibilities:
//
//   - SessionHub owns the per-tenant coalescers and the coalescing policy
//     (MaxCoalesce, FlushWindow). One hub serves every front end of a
//     Server, so checks from an HTTP request, a wire frame, and an shm slot
//     all fold into the same engine.CheckBatch calls.
//   - session is one connection's transport-agnostic state: the tenant
//     cache, the dirty-coalescer list, and the scratch buffers for batch
//     frames. Transports own the framing (HTTP request, wire frame, ring
//     slot) and hand the session (type, id, payload) triples.
//   - responder abstracts the response channel: a wire.Writer for TCP, a
//     completion-ring producer for shm, a synchronous waiter for HTTP.
//
// The adaptive coalescer policy itself is unchanged from PR-4 (see the
// wire.go doc comment for the drain-signal / size-bound / flush-window
// reasoning); what changed is that "connection" became "session" and the
// response path became the responder interface. The coalescer metrics keep
// their wire-era names (WireChecks, WireFlushes, WireCoalesced): they now
// count coalesced checks across every transport.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"draco/internal/engine"
	"draco/internal/wire"
)

// DefaultMaxCoalesce bounds how many single-check requests fold into one
// engine.CheckBatch call. It matches the PR-3 grouped-batch stack-buffer
// bound, so coalesced batches stay on the 0-alloc grouping path.
const DefaultMaxCoalesce = 512

// DefaultFlushWindow is the microsecond-scale timer backstop: the longest
// a submitted check waits for companions before flushing anyway.
const DefaultFlushWindow = 50 * time.Microsecond

// SessionOptions configures a SessionHub's coalescing policy.
type SessionOptions struct {
	// MaxCoalesce bounds a coalesced batch (0 = DefaultMaxCoalesce; capped
	// at wire.MaxBatch).
	MaxCoalesce int
	// FlushWindow is the coalescer's timer backstop (0 = DefaultFlushWindow,
	// negative = no timer: flush only on drain or size).
	FlushWindow time.Duration
}

// SessionHub is the shared session layer over one Server: per-tenant
// coalescers plus the policy knobs. Transports create sessions from it.
type SessionHub struct {
	s           *Server
	maxCoalesce int
	flushWindow time.Duration

	mu       sync.Mutex
	coalesce map[string]*coalescer
}

// NewSessionHub builds the session layer over s and routes the server's
// HTTP single-check path through it (so HTTP checks coalesce with wire and
// shm checks once any hub exists).
func (s *Server) NewSessionHub(opts SessionOptions) *SessionHub {
	maxCo := opts.MaxCoalesce
	if maxCo <= 0 {
		maxCo = DefaultMaxCoalesce
	}
	if maxCo > wire.MaxBatch {
		maxCo = wire.MaxBatch
	}
	window := opts.FlushWindow
	if window == 0 {
		window = DefaultFlushWindow
	}
	h := &SessionHub{
		s:           s,
		maxCoalesce: maxCo,
		flushWindow: window,
		coalesce:    make(map[string]*coalescer),
	}
	s.hub.Store(h)
	return h
}

// coalescerFor returns the tenant's coalescer, creating it on first use.
// Coalescers are keyed by tenant name so engine rebuilds (profile uploads
// that switch mechanisms) keep their pending queue.
func (h *SessionHub) coalescerFor(t *tenant) *coalescer {
	h.mu.Lock()
	defer h.mu.Unlock()
	co := h.coalesce[t.name]
	if co == nil {
		co = &coalescer{h: h, t: t}
		h.coalesce[t.name] = co
	}
	return co
}

// responder is a session's response channel. sendCheck buffers one
// single-check decision; send frames any other response; flush pushes
// buffered responses to the peer. Implementations must be safe for
// concurrent use: coalescer flushes run on arbitrary goroutines.
type responder interface {
	sendCheck(id uint64, d engine.Decision)
	send(t wire.Type, id uint64, payload []byte)
	flush()
}

// session is one connection's transport-independent state. Everything here
// is owned by the transport's dispatch goroutine except resp (responders
// are concurrency-safe) and respSeq (atomic).
type session struct {
	hub  *SessionHub
	resp responder

	// respSeq dedupes response-flush targets inside one coalescer flush
	// (see coalescer.flush).
	respSeq atomic.Uint64

	// Tenant cache: single-tenant connections (the common case) resolve
	// the tenant and its coalescer without a map lookup or allocation.
	lastName []byte
	lastTen  *tenant
	lastCo   *coalescer

	// dirty lists coalescers this session submitted to since its last
	// drain; almost always length 0 or 1.
	dirty []*coalescer

	// Batch-frame scratch, reused across frames (the dispatch goroutine is
	// the only writer).
	calls   []engine.Call
	outs    []engine.Decision
	respBuf []byte
}

// newSession creates a session answering through resp.
func (h *SessionHub) newSession(resp responder) *session {
	return &session{hub: h, resp: resp}
}

// handleFrame dispatches one request frame. Transports call this with the
// frame's payload, which the session only reads during the call (payloads
// may alias transport buffers that are recycled after return).
func (c *session) handleFrame(t wire.Type, id uint64, p []byte) {
	switch t {
	case wire.TypeCheckReq:
		c.handleCheck(id, p)
	case wire.TypeBatchReq:
		c.handleBatch(id, p)
	case wire.TypeProfileReq:
		c.handleProfile(id, p)
	case wire.TypeStatsReq:
		c.handleStats(id, p)
	default:
		c.sendError(id, fmt.Errorf("unexpected %v frame", t))
	}
}

// sendError answers a request with an error frame.
func (c *session) sendError(id uint64, err error) {
	c.hub.s.metrics.WireErrors.Add(1)
	buf := wire.GetBuffer()
	buf.B = append(buf.B[:0], err.Error()...)
	c.resp.send(wire.TypeError, id, buf.B)
	wire.PutBuffer(buf)
}

// resolve maps a tenant name (aliasing the frame payload) to its tenant
// and coalescer, through the session-local cache on repeats.
func (c *session) resolve(name []byte) (*tenant, *coalescer, error) {
	if c.lastTen != nil && bytes.Equal(name, c.lastName) {
		return c.lastTen, c.lastCo, nil
	}
	s := c.hub.s
	s.mu.RLock()
	t := s.tenants[string(name)] // no-copy map lookup
	s.mu.RUnlock()
	if t == nil {
		// Slow path: auto-provision (when configured) exactly like HTTP.
		var err error
		t, err = s.lookupTenant(string(name), "")
		if err != nil {
			return nil, nil, err
		}
	}
	co := c.hub.coalescerFor(t)
	c.lastName = append(c.lastName[:0], name...)
	c.lastTen, c.lastCo = t, co
	return t, co, nil
}

// markDirty remembers a coalescer for this session's next drain.
func (c *session) markDirty(co *coalescer) {
	for _, d := range c.dirty {
		if d == co {
			return
		}
	}
	c.dirty = append(c.dirty, co)
}

// drain flushes every coalescer this session fed, then pushes out any
// response bytes still buffered on the responder.
func (c *session) drain() {
	for i, co := range c.dirty {
		co.flushPending()
		c.dirty[i] = nil
	}
	c.dirty = c.dirty[:0]
	c.resp.flush()
}

func (c *session) handleCheck(id uint64, p []byte) {
	name, call, err := wire.DecodeCheckReq(p)
	if err != nil {
		c.sendError(id, err)
		return
	}
	_, co, err := c.resolve(name)
	if err != nil {
		c.sendError(id, err)
		return
	}
	co.submit(c, id, call)
	c.markDirty(co)
}

func (c *session) handleBatch(id uint64, p []byte) {
	start := time.Now()
	name, seq, err := wire.DecodeBatchReq(p)
	if err != nil {
		c.sendError(id, err)
		return
	}
	t, _, err := c.resolve(name)
	if err != nil {
		c.sendError(id, err)
		return
	}
	c.calls = c.calls[:0]
	for i := 0; i < seq.Len(); i++ {
		c.calls = append(c.calls, seq.At(i))
	}
	c.outs = t.engine().CheckBatch(c.calls, c.outs[:0])
	c.respBuf = wire.AppendBatchResp(c.respBuf[:0], c.outs)
	// Count before publishing: a shm client spinning on the completion
	// ring can observe the response — and read the metrics — the moment
	// the frame lands, so counters must already cover it.
	m := c.hub.s.metrics
	m.WireBatchCalls.Add(uint64(seq.Len()))
	c.resp.send(wire.TypeBatchResp, id, c.respBuf)
	m.WireBatchLatency.Observe(time.Since(start))
}

func (c *session) handleProfile(id uint64, p []byte) {
	name, engName, profileJSON, err := wire.DecodeProfileReq(p)
	if err != nil {
		c.sendError(id, err)
		return
	}
	// Control-plane frames settle the data plane first: pending coalesced
	// checks flush before the swap, so a client interleaving check and
	// profile frames on one stream sees its own program order.
	c.drain()
	resp, err := c.hub.s.putProfile(string(name), string(engName), bytes.NewReader(profileJSON))
	if err != nil {
		c.sendError(id, err)
		return
	}
	c.sendJSON(wire.TypeProfileResp, id, resp)
}

func (c *session) handleStats(id uint64, p []byte) {
	name, err := wire.DecodeStatsReq(p)
	if err != nil {
		c.sendError(id, err)
		return
	}
	c.drain()
	s := c.hub.s
	s.mu.RLock()
	t := s.tenants[string(name)]
	s.mu.RUnlock()
	if t == nil {
		c.sendError(id, fmt.Errorf("unknown tenant %q", name))
		return
	}
	c.sendJSON(wire.TypeStatsResp, id, s.statsFor(t))
}

// sendJSON frames a control-plane response as a JSON payload.
func (c *session) sendJSON(t wire.Type, id uint64, v any) {
	payload, err := json.Marshal(v)
	if err != nil {
		c.hub.s.metrics.EncodeErrors.Add(1)
		log.Printf("dracod: encoding %T response: %v", v, err)
		c.sendError(id, errors.New("response encoding failed"))
		return
	}
	c.resp.send(t, id, payload)
}

// --- the synchronous front end (HTTP) ----------------------------------------

// syncWaiter is the responder for a one-shot synchronous check: the HTTP
// handler's bridge onto the coalescer. sendCheck stores the decision and
// flush signals the waiting goroutine — exactly one of each per check.
// Pooled, together with its dedicated session.
type syncWaiter struct {
	sess *session
	d    engine.Decision
	done chan struct{}
}

func (w *syncWaiter) sendCheck(id uint64, d engine.Decision) { w.d = d }
func (w *syncWaiter) send(t wire.Type, id uint64, p []byte)  {}
func (w *syncWaiter) flush()                                 { w.done <- struct{}{} }

var syncWaiterPool = sync.Pool{New: func() any {
	return &syncWaiter{done: make(chan struct{}, 1)}
}}

// Check routes one call through the tenant's coalescer and waits for its
// decision: the synchronous front ends' entry point. The immediate
// flushPending is the drain-signal analog — a synchronous caller has
// nothing else in flight, so its batch closes at once (companions that
// submitted meanwhile ride along; a lone caller sees a batch of 1).
func (h *SessionHub) Check(t *tenant, call engine.Call) engine.Decision {
	w := syncWaiterPool.Get().(*syncWaiter)
	if w.sess == nil {
		w.sess = h.newSession(w)
	} else {
		w.sess.hub = h
	}
	co := h.coalescerFor(t)
	co.submit(w.sess, 1, call)
	co.flushPending()
	<-w.done
	d := w.d
	syncWaiterPool.Put(w)
	return d
}

// --- the adaptive coalescer -------------------------------------------------

// coalescer folds a tenant's concurrent single-check requests into shared
// engine.CheckBatch calls.
type coalescer struct {
	h *SessionHub
	t *tenant

	mu    sync.Mutex
	cur   *flushBatch
	timer *time.Timer
}

// pendingCheck is one queued single-check request's response routing.
type pendingCheck struct {
	sess  *session
	id    uint64
	start time.Time
}

// flushBatch is the pooled per-flush working set: the queued requests,
// their decoded calls (parallel slices), the decision output buffer, and
// the distinct-session scratch for response flushing.
type flushBatch struct {
	pend  []pendingCheck
	calls []engine.Call
	outs  []engine.Decision
	sess  []*session
}

var flushBatchPool = sync.Pool{New: func() any { return new(flushBatch) }}

// flushSeq stamps coalescer flushes so session dedup in flush() is one
// atomic load per pending entry instead of a per-flush set.
var flushSeq atomic.Uint64

// submit queues one check. The batch flushes inline when it reaches the
// size bound (which is also the backpressure path); otherwise the first
// submission arms the flush-window timer as a latency backstop.
func (c *coalescer) submit(sess *session, id uint64, call engine.Call) {
	start := time.Now()
	c.mu.Lock()
	b := c.cur
	if b == nil {
		b = flushBatchPool.Get().(*flushBatch)
		c.cur = b
	}
	b.pend = append(b.pend, pendingCheck{sess: sess, id: id, start: start})
	b.calls = append(b.calls, call)
	if len(b.pend) >= c.h.maxCoalesce {
		c.cur = nil
		c.mu.Unlock()
		c.flush(b)
		return
	}
	if len(b.pend) == 1 && c.h.flushWindow > 0 {
		if c.timer == nil {
			c.timer = time.AfterFunc(c.h.flushWindow, c.flushPending)
		} else {
			c.timer.Reset(c.h.flushWindow)
		}
	}
	c.mu.Unlock()
}

// flushPending detaches whatever is queued and flushes it. Called from the
// drain signal, the timer, and profile-swap settling.
func (c *coalescer) flushPending() {
	c.mu.Lock()
	b := c.cur
	c.cur = nil
	c.mu.Unlock()
	if b != nil {
		c.flush(b)
	}
}

// flush runs one coalesced engine.CheckBatch and routes each decision back
// to its session. The engine is fetched per flush, so profile uploads
// that rebuild the tenant on a new mechanism take effect batch-to-batch.
func (c *coalescer) flush(b *flushBatch) {
	b.outs = c.t.engine().CheckBatch(b.calls, b.outs[:0])
	m := c.h.s.metrics
	m.WireFlushes.Add(1)
	m.WireChecks.Add(uint64(len(b.pend)))
	m.WireCoalesced.Observe(len(b.pend))

	seq := flushSeq.Add(1)
	b.sess = b.sess[:0]
	for i := range b.pend {
		pc := &b.pend[i]
		pc.sess.resp.sendCheck(pc.id, b.outs[i])
		if pc.sess.respSeq.Load() != seq {
			pc.sess.respSeq.Store(seq)
			b.sess = append(b.sess, pc.sess)
		}
	}
	for i, sc := range b.sess {
		sc.resp.flush()
		b.sess[i] = nil
	}
	for i := range b.pend {
		m.WireCheckLatency.Observe(time.Since(b.pend[i].start))
		b.pend[i] = pendingCheck{}
	}
	b.pend, b.calls, b.outs = b.pend[:0], b.calls[:0], b.outs[:0]
	b.sess = b.sess[:0]
	flushBatchPool.Put(b)
}
