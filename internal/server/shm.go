package server

// The shared-memory front end: submission/completion rings over an mmap'd
// file (see internal/shm) for co-located clients, the tier below the TCP
// wire protocol. Steady-state checks move through shared memory without
// entering the kernel; the kernel is involved only for the handshake, the
// control plane, and doorbells when a side has parked.
//
// Each connection starts life as a unix-socket stream in dir/dracod.sock
// speaking ordinary wire frames. A TypeRingReq frame upgrades it: the
// server creates a region file, answers TypeRingResp with its path, and
// from then on the hot path (check and batch frames) flows through the
// rings while the socket stays up for three jobs:
//
//   - control plane: profile swaps and stats keep using wire frames over
//     the socket — their JSON payloads do not fit fixed-size slots, and
//     they are off the hot path by construction;
//   - handshake v2: the ring request carries the client's capabilities
//     word; the server intersects it with its own, picks the best
//     doorbell (futex > eventfd > socket), and records the choice in the
//     region header. Eventfd doorbells ride back on the TypeRingResp
//     frame as SCM_RIGHTS; socket doorbells are TypeWake frames on this
//     socket; futex doorbells need no socket traffic at all;
//   - liveness: when the socket drops, both sides tear the rings down.
//
// Frames consumed from the submission ring feed the same session layer as
// TCP and HTTP (session.go): tenant resolution, the adaptive coalescer,
// and response routing are shared; only the responder differs — it
// publishes into the completion ring (MPSC, so coalescer flushes from
// arbitrary goroutines publish concurrently) and rings the doorbell when
// the client's reaper has parked.
//
// Ordering: the socket and the rings are independent streams, so control
// frames are ordered only against other socket frames. A client that wants
// a profile swap to settle its in-flight ring checks should quiesce them
// first (the client in internal/server/client does not need to: decisions
// carry ids, and the coalescer flushes on the swap anyway).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"draco/internal/engine"
	"draco/internal/shm"
	"draco/internal/wire"
)

// ShmSocketName is the control-socket filename inside the shm directory.
const ShmSocketName = "dracod.sock"

// ShmServerOptions tunes the shm front end.
type ShmServerOptions struct {
	// Doorbells restricts the doorbell capabilities the server offers
	// during handshake; zero means everything the platform supports.
	Doorbells shm.Caps
	// HugePages asks for huge-page-backed regions (best effort; clients
	// must also advertise CapHugePages).
	HugePages bool
}

// ShmServer serves the shared-memory transport for a Server, one region
// (ring pair) per connection.
type ShmServer struct {
	hub  *SessionHub
	dir  string
	ln   net.Listener
	opts ShmServerOptions

	ringSeq atomic.Uint64

	mu     sync.Mutex
	conns  map[*shmConn]struct{}
	closed bool
}

// NewShmServer builds the shm front end over the hub's session layer with
// default options (every platform doorbell offered, no huge pages).
func (h *SessionHub) NewShmServer(dir string) (*ShmServer, error) {
	return h.NewShmServerOpts(dir, ShmServerOptions{})
}

// NewShmServerOpts builds the shm front end over the hub's session layer,
// listening on dir/dracod.sock and placing region files in dir. The
// directory is created (mode 0700) if missing; a stale socket from a dead
// server is replaced.
func (h *SessionHub) NewShmServerOpts(dir string, opts ShmServerOptions) (*ShmServer, error) {
	if !shm.Supported() {
		return nil, shm.ErrUnsupported
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	sock := filepath.Join(dir, ShmSocketName)
	if err := os.Remove(sock); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	ln, err := net.Listen("unix", sock)
	if err != nil {
		return nil, err
	}
	if opts.Doorbells == 0 {
		opts.Doorbells = shm.PlatformCaps()
	}
	return &ShmServer{
		hub:   h,
		dir:   dir,
		ln:    ln,
		opts:  opts,
		conns: make(map[*shmConn]struct{}),
	}, nil
}

// Addr returns the control socket path.
func (ss *ShmServer) Addr() string { return filepath.Join(ss.dir, ShmSocketName) }

// Dir returns the shm directory clients dial.
func (ss *ShmServer) Dir() string { return ss.dir }

// Serve accepts shm connections until the listener fails or the server is
// closed. It blocks; run it in a goroutine next to the other front ends.
func (ss *ShmServer) Serve() error {
	for {
		nc, err := ss.ln.Accept()
		if err != nil {
			ss.mu.Lock()
			closed := ss.closed
			ss.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c := &shmConn{
			srv:  ss,
			nc:   nc,
			w:    wire.NewWriter(nc),
			dead: make(chan struct{}),
		}
		ss.mu.Lock()
		if ss.closed {
			ss.mu.Unlock()
			nc.Close()
			return nil
		}
		ss.conns[c] = struct{}{}
		ss.mu.Unlock()
		ss.hub.s.metrics.ShmConnsTotal.Add(1)
		ss.hub.s.metrics.ShmConnsActive.Add(1)
		go c.readSocket()
	}
}

// Close shuts the front end: the listener, every connection, and the
// control socket go away; region files are unlinked as their connections
// tear down.
func (ss *ShmServer) Close() error {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return nil
	}
	ss.closed = true
	conns := make([]*shmConn, 0, len(ss.conns))
	for c := range ss.conns {
		conns = append(conns, c)
	}
	ss.mu.Unlock()
	ss.ln.Close()
	for _, c := range conns {
		c.teardown()
	}
	return nil
}

// shmConn is one shm connection: the control socket plus, after the
// handshake, a mapped region, its doorbells, and a consumer goroutine.
type shmConn struct {
	srv  *ShmServer
	nc   net.Conn
	w    *wire.Writer
	dead chan struct{} // closed once on teardown

	// Ring state, written under srv.mu by the handshake (teardown may run
	// from another goroutine while the handshake is in flight).
	reg      *shm.Region
	path     string
	resp     *shmResponder
	subDoor  *shm.Doorbell // server sleeps on it (submission consumer)
	compDoor *shm.Doorbell // server rings it (completion producer)
	spin     *shm.SpinController
	ringID   uint64
	kind     shm.DoorbellKind
	efds     []int         // eventfd doorbells owned by this side's copies
	ringDone chan struct{} // closed when consumeRing exits

	closeOnce sync.Once
}

// teardown closes everything exactly once: the socket (stopping the read
// loop), the rings (unblocking ring spins), and the doorbells (releasing
// a parked consumer promptly). The mapping, the eventfds, and the region
// file are released only after the ring consumer has exited and responder
// publishes are excluded — unmapping under a live ring loop is a fault.
func (c *shmConn) teardown() {
	c.closeOnce.Do(func() {
		close(c.dead)
		c.nc.Close()
		ss := c.srv
		ss.mu.Lock()
		delete(ss.conns, c)
		reg, path, resp, ringDone := c.reg, c.path, c.resp, c.ringDone
		subDoor, compDoor, spin, ringID, kind, efds := c.subDoor, c.compDoor, c.spin, c.ringID, c.kind, c.efds
		ss.mu.Unlock()
		m := ss.hub.s.metrics
		if reg != nil {
			reg.Invalidate()
			subDoor.Close()
			compDoor.Close()
			go func() {
				<-ringDone
				resp.mu.Lock()
				reg.Close()
				resp.mu.Unlock()
				os.Remove(path)
				for _, fd := range efds {
					shm.CloseFD(fd)
				}
				m.dropShmRing(ringID, spin, kind)
			}()
		}
		m.ShmConnsActive.Add(-1)
	})
}

// sendError answers a socket request with an error frame.
func (c *shmConn) sendError(id uint64, err error) {
	c.srv.hub.s.metrics.WireErrors.Add(1)
	c.w.Send(wire.TypeError, id, []byte(err.Error()))
}

// readSocket runs the control-plane read loop: handshake, doorbells, and
// profile/stats frames, each a plain wire frame on the unix socket.
func (c *shmConn) readSocket() {
	defer c.teardown()
	r := wire.NewReader(c.nc)
	ctrl := c.srv.hub.newSession(wireResponder{w: c.w})
	for {
		h, p, err := r.Next()
		if err != nil {
			if err != io.EOF && err != io.ErrUnexpectedEOF && !errors.Is(err, net.ErrClosed) {
				c.srv.hub.s.metrics.WireFrameErrors.Add(1)
				log.Printf("dracod: shm control socket: %v", err)
			}
			ctrl.drain()
			return
		}
		switch h.Type {
		case wire.TypeRingReq:
			if err := c.handleRingReq(h.ID, p); err != nil {
				c.sendError(h.ID, err)
			}
		case wire.TypeWake:
			// Client produced into an empty submission ring while our
			// consumer was parked: unpark it. The doorbell coalesces
			// redundant wakes — exactly what we want.
			c.srv.mu.Lock()
			d := c.subDoor
			c.srv.mu.Unlock()
			if d != nil {
				d.Notify()
			}
		default:
			ctrl.handleFrame(h.Type, h.ID, p)
			if r.Buffered() == 0 {
				ctrl.drain()
			}
		}
	}
}

// handleRingReq establishes this connection's ring pair: negotiate the
// doorbell, create the region file, answer with its path (plus eventfds
// as SCM_RIGHTS when that mechanism won), start the submission consumer.
func (c *shmConn) handleRingReq(id uint64, p []byte) error {
	if c.reg != nil {
		return errors.New("shm: connection already has a ring pair")
	}
	l, clientCaps, err := parseRingReq(p)
	if err != nil {
		return err
	}
	ss := c.srv
	kind := shm.PickDoorbell(clientCaps, ss.opts.Doorbells&shm.PlatformCaps())

	// Eventfd doorbells exist before the region so their fds can ride on
	// the response frame; creation failure downgrades to the socket byte
	// rather than failing the handshake.
	var efds []int
	if kind == shm.DoorbellEventfd {
		efdSub, err1 := shm.NewEventfd()
		efdComp, err2 := shm.NewEventfd()
		if err1 != nil || err2 != nil {
			shm.CloseFD(efdSub)
			shm.CloseFD(efdComp)
			kind = shm.DoorbellSocket
		} else {
			efds = []int{efdSub, efdComp}
		}
	}
	l.Doorbell = kind
	if ss.opts.HugePages && clientCaps.Has(shm.CapHugePages) {
		l.HugePages = true
	}

	ringID := ss.ringSeq.Add(1)
	path := filepath.Join(ss.dir, fmt.Sprintf("ring-%d.shm", ringID))
	reg, err := shm.CreateFile(path, l)
	if err != nil {
		for _, fd := range efds {
			shm.CloseFD(fd)
		}
		return err
	}
	var subCfg, compCfg shm.DoorbellConfig
	if kind == shm.DoorbellEventfd {
		subCfg.Eventfd, compCfg.Eventfd = efds[0], efds[1]
	}
	compCfg.SocketRing = func() { c.w.Send(wire.TypeWake, 0, nil) }
	subDoor, err := shm.NewDoorbell(kind, reg.Submit, subCfg)
	if err == nil {
		c.compDoor, err = shm.NewDoorbell(kind, reg.Complete, compCfg)
	}
	if err != nil {
		reg.Close()
		os.Remove(path)
		for _, fd := range efds {
			shm.CloseFD(fd)
		}
		return err
	}

	ss.mu.Lock()
	c.reg, c.path, c.ringID, c.kind, c.efds = reg, path, ringID, kind, efds
	c.subDoor = subDoor
	c.spin = shm.NewSpinController()
	c.resp = &shmResponder{conn: c, ring: reg.Complete}
	c.ringDone = make(chan struct{})
	ss.mu.Unlock()
	m := ss.hub.s.metrics
	m.ShmRings.Add(1)
	m.addShmRing(ringID, c.spin, kind)
	go c.consumeRing()

	if kind == shm.DoorbellEventfd {
		// The fds must travel with the response itself, bypassing the
		// frame writer — flush it first so frames stay ordered.
		if err := c.w.Flush(); err != nil {
			return err
		}
		frame := make([]byte, wire.HeaderSize+len(path))
		wire.PutHeader(frame, wire.Header{Type: wire.TypeRingResp, ID: id, Len: uint32(len(path))})
		copy(frame[wire.HeaderSize:], path)
		return sendFrameWithFDs(c.nc, frame, efds)
	}
	return c.w.Send(wire.TypeRingResp, id, []byte(path))
}

// parseRingReq decodes the requested geometry and capabilities. Three
// payload shapes: empty (defaults, v1), 12 bytes (three uint32 geometry
// words, each 0 for the default — the v1 request), or 16 bytes (the v2
// request: geometry plus the client's capabilities word). v1 clients
// therefore negotiate exactly the PR-8 behavior: socket doorbell, no
// huge pages.
func parseRingReq(p []byte) (shm.Layout, shm.Caps, error) {
	l := shm.DefaultLayout()
	caps := shm.CapDoorbellSocket
	if len(p) == 0 {
		return l, caps, nil
	}
	if len(p) != 12 && len(p) != 16 {
		return l, caps, errors.New("shm: ring request payload must be 0, 12, or 16 bytes")
	}
	get := func(off int, def int) int {
		if v := binary.LittleEndian.Uint32(p[off:]); v != 0 {
			return int(v)
		}
		return def
	}
	l.SlotSize = get(0, l.SlotSize)
	l.SubmitSlots = get(4, l.SubmitSlots)
	l.CompleteSlots = get(8, l.CompleteSlots)
	if len(p) == 16 {
		caps |= shm.Caps(binary.LittleEndian.Uint32(p[12:]))
	}
	return l, caps, l.Validate()
}

// consumeRing is the submission-ring consumer: the shm analog of the wire
// read loop, run through the shared ConsumeLoop (park protocol, adaptive
// spin budget, doorbell). Frames dispatch into a session whose responder
// publishes to the completion ring; an empty ring after a burst is the
// drain signal.
func (c *shmConn) consumeRing() {
	defer close(c.ringDone)
	m := c.srv.hub.s.metrics
	sess := c.srv.hub.newSession(c.resp)
	loop := &shm.ConsumeLoop{
		Ring: c.reg.Submit,
		Door: c.subDoor,
		Spin: c.spin,
		Stop: c.dead,
		Handle: func(f *shm.Frame) {
			m.ShmFrames.Add(1)
			sess.handleFrame(wire.Type(f.Type), f.ID, f.Payload)
		},
		// Drain signal: the submission burst is fully consumed, so nothing
		// more is joining the batch from this ring — flush what it
		// contributed to.
		Drained: func() { sess.drain() },
	}
	if err := loop.Run(); err != nil {
		// Torn or corrupt slot state: the peer cannot be resynchronized.
		m.ShmFrameErrors.Add(1)
		log.Printf("dracod: shm ring: %v", err)
		c.teardown()
	}
}

// shmResponder publishes responses into the connection's completion ring.
// The ring is MPSC, so coalescer flushes on arbitrary goroutines publish
// concurrently under a shared read-lock; the write-lock belongs to
// teardown, which must exclude all producers before unmapping. A full
// ring makes Claim spin — the transport's backpressure, same as a wire
// responder blocked on TCP flow control.
type shmResponder struct {
	conn *shmConn
	mu   sync.RWMutex
	ring *shm.Ring
}

// publish claims a slot, encodes via fill (which appends to the slot's own
// buffer — zero copy), and publishes it.
func (r *shmResponder) publish(t wire.Type, id uint64, fill func([]byte) []byte) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	// The closed check shares the lock with teardown's deferred unmap, so
	// a publish never touches the mapping after it is gone.
	if r.ring.Closed() {
		return
	}
	pos, buf := r.ring.Claim()
	if buf == nil {
		return // ring closed mid-response; the connection is tearing down
	}
	if err := r.ring.Publish(pos, uint8(t), id, fill(buf)); err != nil {
		// Only ErrFrameTooBig reaches here. The MPSC claim contract is
		// hole-free — this same slot must still publish — so the response
		// is replaced in place by an error frame (which always fits) and
		// the id still completes.
		r.ring.Publish(pos, uint8(wire.TypeError), id, append(buf[:0], err.Error()...))
	}
}

func (r *shmResponder) sendCheck(id uint64, d engine.Decision) {
	r.publish(wire.TypeCheckResp, id, func(buf []byte) []byte {
		return wire.AppendCheckResp(buf, d)
	})
}

func (r *shmResponder) send(t wire.Type, id uint64, p []byte) {
	r.publish(t, id, func(buf []byte) []byte {
		return append(buf, p...)
	})
	r.doorbell()
}

// flush rings the client's doorbell if its reaper has parked. Publication
// itself needs no flushing — slots are visible at Publish — so this is the
// whole "push buffered responses" obligation for shm.
func (r *shmResponder) flush() { r.doorbell() }

func (r *shmResponder) doorbell() {
	r.mu.RLock()
	if !r.ring.Closed() && r.ring.ConsumerParked() {
		r.conn.srv.hub.s.metrics.ShmWakes.Add(1)
		r.conn.compDoor.Ring()
	}
	r.mu.RUnlock()
}
