package server

// The shared-memory front end: submission/completion rings over an mmap'd
// file (see internal/shm) for co-located clients, the tier below the TCP
// wire protocol. Steady-state checks move through shared memory without
// entering the kernel; the kernel is involved only for the handshake, the
// control plane, and doorbells when a side has parked.
//
// Each connection starts life as a unix-socket stream in dir/dracod.sock
// speaking ordinary wire frames. A TypeRingReq frame upgrades it: the
// server creates a region file, answers TypeRingResp with its path, and
// from then on the hot path (check and batch frames) flows through the
// rings while the socket stays up for three jobs:
//
//   - control plane: profile swaps and stats keep using wire frames over
//     the socket — their JSON payloads do not fit fixed-size slots, and
//     they are off the hot path by construction;
//   - doorbells: a TypeWake frame in either direction is the portable
//     eventfd stand-in that unparks a blocked ring consumer;
//   - liveness: when the socket drops, both sides tear the rings down.
//
// Frames consumed from the submission ring feed the same session layer as
// TCP and HTTP (session.go): tenant resolution, the adaptive coalescer,
// and response routing are shared; only the responder differs — it
// publishes into the completion ring and rings the doorbell when the
// client's reaper has parked.
//
// Ordering: the socket and the rings are independent streams, so control
// frames are ordered only against other socket frames. A client that wants
// a profile swap to settle its in-flight ring checks should quiesce them
// first (the client in internal/server/client does not need to: decisions
// carry ids, and the coalescer flushes on the swap anyway).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"draco/internal/engine"
	"draco/internal/shm"
	"draco/internal/wire"
)

// ShmSocketName is the control-socket filename inside the shm directory.
const ShmSocketName = "dracod.sock"

// parkSpinBudget is how many empty polls a ring consumer takes — yielding
// the scheduler on each — before parking on the doorbell. Small enough
// that an idle connection stops burning CPU almost immediately, large
// enough that a streaming peer never pays a wake syscall.
const parkSpinBudget = 256

// ShmServer serves the shared-memory transport for a Server, one region
// (ring pair) per connection.
type ShmServer struct {
	hub *SessionHub
	dir string
	ln  net.Listener

	ringSeq atomic.Uint64

	mu     sync.Mutex
	conns  map[*shmConn]struct{}
	closed bool
}

// NewShmServer builds the shm front end over the hub's session layer,
// listening on dir/dracod.sock and placing region files in dir. The
// directory is created (mode 0700) if missing; a stale socket from a dead
// server is replaced.
func (h *SessionHub) NewShmServer(dir string) (*ShmServer, error) {
	if !shm.Supported() {
		return nil, shm.ErrUnsupported
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	sock := filepath.Join(dir, ShmSocketName)
	if err := os.Remove(sock); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	ln, err := net.Listen("unix", sock)
	if err != nil {
		return nil, err
	}
	return &ShmServer{
		hub:   h,
		dir:   dir,
		ln:    ln,
		conns: make(map[*shmConn]struct{}),
	}, nil
}

// Addr returns the control socket path.
func (ss *ShmServer) Addr() string { return filepath.Join(ss.dir, ShmSocketName) }

// Dir returns the shm directory clients dial.
func (ss *ShmServer) Dir() string { return ss.dir }

// Serve accepts shm connections until the listener fails or the server is
// closed. It blocks; run it in a goroutine next to the other front ends.
func (ss *ShmServer) Serve() error {
	for {
		nc, err := ss.ln.Accept()
		if err != nil {
			ss.mu.Lock()
			closed := ss.closed
			ss.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c := &shmConn{
			srv:  ss,
			nc:   nc,
			w:    wire.NewWriter(nc),
			wake: make(chan struct{}, 1),
			dead: make(chan struct{}),
		}
		ss.mu.Lock()
		if ss.closed {
			ss.mu.Unlock()
			nc.Close()
			return nil
		}
		ss.conns[c] = struct{}{}
		ss.mu.Unlock()
		ss.hub.s.metrics.ShmConnsTotal.Add(1)
		ss.hub.s.metrics.ShmConnsActive.Add(1)
		go c.readSocket()
	}
}

// Close shuts the front end: the listener, every connection, and the
// control socket go away; region files are unlinked as their connections
// tear down.
func (ss *ShmServer) Close() error {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return nil
	}
	ss.closed = true
	conns := make([]*shmConn, 0, len(ss.conns))
	for c := range ss.conns {
		conns = append(conns, c)
	}
	ss.mu.Unlock()
	ss.ln.Close()
	for _, c := range conns {
		c.teardown()
	}
	return nil
}

// shmConn is one shm connection: the control socket plus, after the
// handshake, a mapped region and its consumer goroutine.
type shmConn struct {
	srv  *ShmServer
	nc   net.Conn
	w    *wire.Writer
	wake chan struct{} // doorbell for the parked ring consumer
	dead chan struct{} // closed once on teardown

	// Ring state, written under srv.mu by the handshake (teardown may run
	// from another goroutine while the handshake is in flight).
	reg      *shm.Region
	path     string
	resp     *shmResponder
	ringDone chan struct{} // closed when consumeRing exits

	closeOnce sync.Once
}

// teardown closes everything exactly once: the socket (stopping the read
// loop) and the rings (unblocking ring spins). The mapping and the region
// file are released only after the ring consumer has exited and responder
// flushes are excluded — unmapping under a live ring loop is a fault.
func (c *shmConn) teardown() {
	c.closeOnce.Do(func() {
		close(c.dead)
		c.nc.Close()
		ss := c.srv
		ss.mu.Lock()
		delete(ss.conns, c)
		reg, path, resp, ringDone := c.reg, c.path, c.resp, c.ringDone
		ss.mu.Unlock()
		if reg != nil {
			reg.Invalidate()
			go func() {
				<-ringDone
				resp.mu.Lock()
				reg.Close()
				resp.mu.Unlock()
				os.Remove(path)
			}()
		}
		ss.hub.s.metrics.ShmConnsActive.Add(-1)
	})
}

// sendError answers a socket request with an error frame.
func (c *shmConn) sendError(id uint64, err error) {
	c.srv.hub.s.metrics.WireErrors.Add(1)
	c.w.Send(wire.TypeError, id, []byte(err.Error()))
}

// readSocket runs the control-plane read loop: handshake, doorbells, and
// profile/stats frames, each a plain wire frame on the unix socket.
func (c *shmConn) readSocket() {
	defer c.teardown()
	r := wire.NewReader(c.nc)
	ctrl := c.srv.hub.newSession(wireResponder{w: c.w})
	for {
		h, p, err := r.Next()
		if err != nil {
			if err != io.EOF && err != io.ErrUnexpectedEOF && !errors.Is(err, net.ErrClosed) {
				c.srv.hub.s.metrics.WireFrameErrors.Add(1)
				log.Printf("dracod: shm control socket: %v", err)
			}
			ctrl.drain()
			return
		}
		switch h.Type {
		case wire.TypeRingReq:
			if err := c.handleRingReq(h.ID, p); err != nil {
				c.sendError(h.ID, err)
			}
		case wire.TypeWake:
			// Client produced into an empty submission ring while our
			// consumer was parked: unpark it. Non-blocking — coalescing
			// redundant wakes is exactly what we want.
			select {
			case c.wake <- struct{}{}:
			default:
			}
		default:
			ctrl.handleFrame(h.Type, h.ID, p)
			if r.Buffered() == 0 {
				ctrl.drain()
			}
		}
	}
}

// handleRingReq establishes this connection's ring pair: create the region
// file, answer with its path, start the submission consumer.
func (c *shmConn) handleRingReq(id uint64, p []byte) error {
	if c.reg != nil {
		return errors.New("shm: connection already has a ring pair")
	}
	l, err := parseRingReq(p)
	if err != nil {
		return err
	}
	path := filepath.Join(c.srv.dir, fmt.Sprintf("ring-%d.shm", c.srv.ringSeq.Add(1)))
	reg, err := shm.CreateFile(path, l)
	if err != nil {
		return err
	}
	c.srv.mu.Lock()
	c.reg, c.path = reg, path
	c.resp = &shmResponder{conn: c, ring: reg.Complete}
	c.ringDone = make(chan struct{})
	c.srv.mu.Unlock()
	c.srv.hub.s.metrics.ShmRings.Add(1)
	go c.consumeRing()
	return c.w.Send(wire.TypeRingResp, id, []byte(path))
}

// parseRingReq decodes the requested geometry: three uint32 words, each 0
// for the server default. An empty payload takes the default wholesale.
func parseRingReq(p []byte) (shm.Layout, error) {
	l := shm.DefaultLayout()
	if len(p) == 0 {
		return l, nil
	}
	if len(p) != 12 {
		return l, errors.New("shm: ring request payload must be 0 or 12 bytes")
	}
	get := func(off int, def int) int {
		if v := binary.LittleEndian.Uint32(p[off:]); v != 0 {
			return int(v)
		}
		return def
	}
	l.SlotSize = get(0, l.SlotSize)
	l.SubmitSlots = get(4, l.SubmitSlots)
	l.CompleteSlots = get(8, l.CompleteSlots)
	return l, l.Validate()
}

// consumeRing is the submission-ring consumer: the shm analog of the wire
// read loop. Frames dispatch into a session whose responder publishes to
// the completion ring; an empty ring after a burst is the drain signal.
func (c *shmConn) consumeRing() {
	defer close(c.ringDone)
	sub := c.reg.Submit
	m := c.srv.hub.s.metrics
	sess := c.srv.hub.newSession(c.resp)
	var f shm.Frame
	spins := 0
	for {
		ok, err := sub.Consume(&f)
		if err != nil {
			// Torn or corrupt slot state: the peer cannot be resynchronized.
			m.ShmFrameErrors.Add(1)
			log.Printf("dracod: shm ring: %v", err)
			c.teardown()
			return
		}
		if !ok {
			if sub.Closed() {
				return
			}
			spins++
			if spins < parkSpinBudget {
				// Yield every empty poll: on small machines an unyielding
				// spin starves the producer we are waiting for.
				runtime.Gosched()
				continue
			}
			// Park: publish the flag, re-check for a frame that slipped in
			// between the empty poll and the flag store (the producer
			// checks the flag only after publishing — one of the two sides
			// always sees the other), then block on the doorbell.
			sub.SetParked(true)
			if !sub.Empty() {
				sub.SetParked(false)
				spins = 0
				continue
			}
			m.ShmParks.Add(1)
			select {
			case <-c.wake:
			case <-c.dead:
				sub.SetParked(false)
				return
			}
			sub.SetParked(false)
			spins = 0
			continue
		}
		spins = 0
		m.ShmFrames.Add(1)
		sess.handleFrame(wire.Type(f.Type), f.ID, f.Payload)
		sub.Release()
		// Drain signal: the submission burst is fully consumed, so nothing
		// more is joining the batch from this ring — flush what it
		// contributed to.
		if sub.Empty() {
			sess.drain()
		}
	}
}

// shmResponder publishes responses into the connection's completion ring.
// The mutex serializes the ring's producer side: coalescer flushes run on
// arbitrary goroutines. A full ring makes Claim spin — the transport's
// backpressure, same as a wire responder blocked on TCP flow control.
type shmResponder struct {
	conn *shmConn
	mu   sync.Mutex
	ring *shm.Ring
}

// publish claims a slot, encodes via fill (which appends to the slot's own
// buffer — zero copy), and publishes it.
func (r *shmResponder) publish(t wire.Type, id uint64, fill func([]byte) []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// The closed check shares the mutex with teardown's deferred unmap, so
	// a flush never touches the mapping after it is gone.
	if r.ring.Closed() {
		return
	}
	buf := r.ring.Claim()
	if buf == nil {
		return // ring closed mid-response; the connection is tearing down
	}
	if err := r.ring.Publish(uint8(t), id, fill(buf)); err != nil {
		// Only ErrFrameTooBig reaches here: replace the response with an
		// error frame (which always fits) so the id still completes.
		msg := err.Error()
		if buf2 := r.ring.Claim(); buf2 != nil {
			r.ring.Publish(uint8(wire.TypeError), id, append(buf2, msg...))
		}
	}
}

func (r *shmResponder) sendCheck(id uint64, d engine.Decision) {
	r.publish(wire.TypeCheckResp, id, func(buf []byte) []byte {
		return wire.AppendCheckResp(buf, d)
	})
}

func (r *shmResponder) send(t wire.Type, id uint64, p []byte) {
	r.publish(t, id, func(buf []byte) []byte {
		return append(buf, p...)
	})
	r.doorbell()
}

// flush rings the client's doorbell if its reaper has parked. Publication
// itself needs no flushing — slots are visible at Publish — so this is the
// whole "push buffered responses" obligation for shm.
func (r *shmResponder) flush() { r.doorbell() }

func (r *shmResponder) doorbell() {
	r.mu.Lock()
	parked := !r.ring.Closed() && r.ring.ConsumerParked()
	r.mu.Unlock()
	if parked {
		r.conn.srv.hub.s.metrics.ShmWakes.Add(1)
		r.conn.w.Send(wire.TypeWake, 0, nil)
	}
}
