package server_test

// Wire front-end tests: end-to-end over real TCP connections, the
// wire-vs-in-process differential suite (the binary protocol must be a
// transparent transport: decisions identical to calling the engine
// directly), coalescing behaviour, and the 32-goroutine hot-swap hammer
// that scripts/check.sh runs under -race.

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"draco/internal/engine"
	"draco/internal/profilegen"
	"draco/internal/seccomp"
	"draco/internal/server"
	"draco/internal/server/client"
	"draco/internal/syscalls"
	"draco/internal/wire"
	"draco/internal/workloads"
)

// newWireServer starts a Server with a wire listener and returns it with a
// pooled wire client. Both are torn down with the test.
func newWireServer(t testing.TB, opts server.Options, wopts server.WireOptions, copts client.WireOptions) (*server.Server, *client.Wire) {
	t.Helper()
	srv := server.New(opts)
	ws := srv.NewWireServer(wopts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	t.Cleanup(func() { ws.Close() })
	wc, err := client.DialWire(ln.Addr().String(), copts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wc.Close() })
	return srv, wc
}

func sidOf(t testing.TB, name string) int {
	t.Helper()
	in, ok := syscalls.ByName(name)
	if !ok {
		t.Fatalf("unknown syscall %q", name)
	}
	return in.Num
}

func TestWireCheckAndBatch(t *testing.T) {
	srv, wc := newWireServer(t,
		server.Options{Shards: 4, DefaultProfile: seccomp.DockerDefault()},
		server.WireOptions{}, client.WireOptions{})
	ctx := context.Background()

	read := sidOf(t, "read")
	d, err := wc.Check(ctx, "t1", read, engine.Args{3, 0, 4096})
	if err != nil {
		t.Fatal(err)
	}
	// First check is a miss (not cached); under the default bitmap exec
	// tier the ID-only read resolves with zero BPF instructions executed.
	if !d.Allowed || d.Cached || d.FilterInstructions != 0 {
		t.Fatalf("first check: %+v", d)
	}
	d, err = wc.Check(ctx, "t1", read, engine.Args{3, 0, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed || !d.Cached || d.FilterInstructions != 0 {
		t.Fatalf("second check: %+v", d)
	}
	// Docker's default denies syscalls outside the whitelist.
	d, err = wc.Check(ctx, "t1", sidOf(t, "init_module"), engine.Args{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed {
		t.Fatalf("init_module allowed: %+v", d)
	}

	calls := []engine.Call{
		{SID: read, Args: engine.Args{3, 0, 4096}},
		{SID: sidOf(t, "write"), Args: engine.Args{1, 0, 12}},
		{SID: sidOf(t, "init_module")},
	}
	ds, err := wc.CheckBatch(ctx, "t1", calls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("batch returned %d decisions", len(ds))
	}
	if !ds[0].Allowed || !ds[1].Allowed || ds[2].Allowed {
		t.Fatalf("batch decisions: %+v", ds)
	}

	m := srv.Metrics()
	if got := m.WireChecks.Load(); got != 3 {
		t.Fatalf("WireChecks = %d, want 3", got)
	}
	if got := m.WireBatchCalls.Load(); got != 3 {
		t.Fatalf("WireBatchCalls = %d, want 3", got)
	}
	if m.WireFlushes.Load() == 0 || m.WireConnsTotal.Load() == 0 {
		t.Fatalf("flushes=%d conns=%d", m.WireFlushes.Load(), m.WireConnsTotal.Load())
	}
}

func TestWireProfileSwapAndStats(t *testing.T) {
	_, wc := newWireServer(t, server.Options{Shards: 4},
		server.WireOptions{}, client.WireOptions{})
	ctx := context.Background()

	// No default profile: unknown tenants are rejected with an error frame
	// and the connection stays usable.
	if _, err := wc.Check(ctx, "ghost", sidOf(t, "read"), engine.Args{}); err == nil {
		t.Fatal("check on unknown tenant succeeded")
	} else if _, ok := err.(*client.ServerError); !ok {
		t.Fatalf("want *client.ServerError, got %T: %v", err, err)
	}

	resp, err := wc.PutProfile(ctx, "web", "draco-sw", profileJSON(t, seccomp.DockerDefault()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "web" || resp.Engine != "draco-sw" || !resp.Created {
		t.Fatalf("profile response: %+v", resp)
	}

	read := sidOf(t, "read")
	for i := 0; i < 3; i++ {
		if _, err := wc.Check(ctx, "web", read, engine.Args{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := wc.Stats(ctx, "web")
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "web" || st.Engine != "draco-sw" || st.Checks != 3 {
		t.Fatalf("stats: %+v", st)
	}

	// Hot swap to a different mechanism; the tenant survives with the new
	// engine and a fresh generation.
	resp, err = wc.PutProfile(ctx, "web", "draco-concurrent", profileJSON(t, seccomp.GVisorDefault()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Engine != "draco-concurrent" || resp.Created {
		t.Fatalf("swap response: %+v", resp)
	}
	if _, err := wc.Check(ctx, "web", read, engine.Args{}); err != nil {
		t.Fatal(err)
	}
}

// TestWireFrameErrorDropsConnection proves framing failures are terminal:
// garbage on the stream closes the connection and is counted, while other
// connections keep serving.
func TestWireFrameErrorDropsConnection(t *testing.T) {
	srv := server.New(server.Options{Shards: 4, DefaultProfile: seccomp.DockerDefault()})
	ws := srv.NewWireServer(server.WireOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	defer ws.Close()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write(bytes.Repeat([]byte{0xFF}, wire.HeaderSize)); err != nil {
		t.Fatal(err)
	}
	// The server must close the stream on a framing error.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(nc); err != nil {
		t.Fatalf("expected clean close, got %v", err)
	}
	if got := srv.Metrics().WireFrameErrors.Load(); got != 1 {
		t.Fatalf("WireFrameErrors = %d, want 1", got)
	}

	// A well-formed connection still works after the bad one died.
	wc, err := client.DialWire(ln.Addr().String(), client.WireOptions{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	if _, err := wc.Check(context.Background(), "t", sidOf(t, "read"), engine.Args{}); err != nil {
		t.Fatal(err)
	}
}

// TestWireCoalescing drives 32 concurrent pipelined callers through one
// connection and asserts the server folded their single-check frames into
// shared engine.CheckBatch calls.
func TestWireCoalescing(t *testing.T) {
	srv, wc := newWireServer(t,
		server.Options{Shards: 4, DefaultProfile: seccomp.DockerDefault()},
		server.WireOptions{}, client.WireOptions{Conns: 1})
	ctx := context.Background()

	const goroutines, perG = 32, 300
	read := sidOf(t, "read")
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				d, err := wc.Check(ctx, "t", read, engine.Args{uint64(g), uint64(i)})
				if err != nil {
					errCh <- err
					return
				}
				if !d.Allowed {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	m := srv.Metrics()
	checks, flushes := m.WireChecks.Load(), m.WireFlushes.Load()
	if checks != goroutines*perG {
		t.Fatalf("WireChecks = %d, want %d", checks, goroutines*perG)
	}
	if flushes == 0 || flushes >= checks {
		t.Fatalf("no coalescing: %d flushes for %d checks", flushes, checks)
	}
	if got := m.WireCoalesced.Count(); got != flushes {
		t.Fatalf("size histogram saw %d batches, flushes say %d", got, flushes)
	}
	if m.WireCoalesced.Sum() != checks {
		t.Fatalf("size histogram sums %d calls, checks say %d", m.WireCoalesced.Sum(), checks)
	}

	// The wire series render on the /metrics page.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	text, err := client.New(ts.URL, ts.Client()).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"dracod_wire_checks_total",
		"dracod_wire_coalesced_flushes_total",
		"dracod_wire_coalesced_batch_size_mean",
		`dracod_wire_latency_ns{op="check",quantile="0.99"}`,
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("metrics page missing %s:\n%s", series, text)
		}
	}
}

// TestWireDifferentialAllWorkloads is the transport-transparency proof: on
// 100k-event traces of every workload, decisions served over the wire
// (batch frames, and a pipelined single-check prefix through the
// coalescer) are identical — including the cached flag — to an in-process
// engine with the same configuration.
func TestWireDifferentialAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite replays 1.5M events over TCP")
	}
	const events = 100_000
	const singles = 10_000
	const shards = 4
	genOpts := profilegen.Options{IncludeRuntime: true}

	_, wc := newWireServer(t, server.Options{Shards: shards, Routing: "syscall"},
		server.WireOptions{}, client.WireOptions{Conns: 4})

	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			tr := w.Generate(events, 0xD12AC0)
			p := profilegen.Complete(w.Name, tr, genOpts)
			pj := profileJSON(t, p)

			// Batch-frame replay vs a fresh in-process reference engine
			// built exactly like the server builds tenant engines.
			if _, err := wc.PutProfile(ctx, w.Name, "", pj); err != nil {
				t.Fatal(err)
			}
			ref, err := engine.New("draco-concurrent", engine.Options{Profile: p, Shards: shards, Routing: "syscall"})
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			calls := make([]engine.Call, 0, 512)
			var ds []engine.Decision
			for off := 0; off < len(tr); off += 512 {
				end := off + 512
				if end > len(tr) {
					end = len(tr)
				}
				calls = calls[:0]
				for _, ev := range tr[off:end] {
					calls = append(calls, engine.Call{SID: ev.SID, Args: ev.Args})
				}
				ds, err = wc.CheckBatch(ctx, w.Name, calls, ds)
				if err != nil {
					t.Fatal(err)
				}
				for i, c := range calls {
					want := ref.Check(c.SID, c.Args)
					if ds[i] != want {
						t.Fatalf("batch event %d (sid=%d): wire %+v, in-process %+v", off+i, c.SID, ds[i], want)
					}
				}
			}

			// Single-check frames through the coalescer, sequentially, so
			// the decision stream (cached flag included) stays ordered.
			single := w.Name + "-single"
			if _, err := wc.PutProfile(ctx, single, "", pj); err != nil {
				t.Fatal(err)
			}
			ref2, err := engine.New("draco-concurrent", engine.Options{Profile: p, Shards: shards, Routing: "syscall"})
			if err != nil {
				t.Fatal(err)
			}
			defer ref2.Close()
			for i, ev := range tr[:singles] {
				got, err := wc.Check(ctx, single, ev.SID, ev.Args)
				if err != nil {
					t.Fatal(err)
				}
				if want := ref2.Check(ev.SID, ev.Args); got != want {
					t.Fatalf("single event %d (sid=%d): wire %+v, in-process %+v", i, ev.SID, got, want)
				}
			}
		})
	}
}

// TestWireHotSwapHammer is the -race workout: 32 goroutines hammer one
// wire connection pool with checks and batches while a writer hot-swaps
// the tenant's profile (alternating engines, so whole-engine rebuilds race
// with coalesced flushes). Every request must complete without a
// transport- or request-level error.
func TestWireHotSwapHammer(t *testing.T) {
	_, wc := newWireServer(t, server.Options{Shards: 4},
		server.WireOptions{}, client.WireOptions{Conns: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	docker := profileJSON(t, seccomp.DockerDefault())
	gvisor := profileJSON(t, seccomp.GVisorDefault())
	if _, err := wc.PutProfile(ctx, "hammer", "draco-concurrent", docker); err != nil {
		t.Fatal(err)
	}

	const goroutines, perG = 32, 200
	read := sidOf(t, "read")
	batch := []engine.Call{{SID: read, Args: engine.Args{3}}, {SID: sidOf(t, "close"), Args: engine.Args{3}}}
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines+1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var ds []engine.Decision
			for i := 0; i < perG; i++ {
				if i%8 == 7 {
					var err error
					ds, err = wc.CheckBatch(ctx, "hammer", batch, ds)
					if err != nil {
						errCh <- err
						return
					}
					continue
				}
				if _, err := wc.Check(ctx, "hammer", read, engine.Args{uint64(g), uint64(i)}); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		engines := []string{"draco-sw", "draco-concurrent"}
		bodies := [][]byte{docker, gvisor}
		for i := 0; i < 40; i++ {
			if _, err := wc.PutProfile(ctx, "hammer", engines[i%2], bodies[i%2]); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
