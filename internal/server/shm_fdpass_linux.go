//go:build linux

package server

import (
	"errors"
	"net"
	"syscall"
)

// sendFrameWithFDs writes one wire frame with file descriptors attached as
// SCM_RIGHTS ancillary data. The fds ride on the first byte; if sendmsg
// short-writes, the remainder goes out as plain stream bytes (the
// ancillary data was already delivered with the first segment).
func sendFrameWithFDs(nc net.Conn, frame []byte, fds []int) error {
	uc, ok := nc.(*net.UnixConn)
	if !ok {
		return errors.New("shm: fd passing needs a unix socket")
	}
	oob := syscall.UnixRights(fds...)
	n, _, err := uc.WriteMsgUnix(frame, oob, nil)
	if err != nil {
		return err
	}
	for n < len(frame) {
		w, err := uc.Write(frame[n:])
		if err != nil {
			return err
		}
		n += w
	}
	return nil
}
