package server

// Alloc benchmarks for the JSON response path. Three variants:
//
//   - Stream: the pre-PR-4 code — json.NewEncoder(w).Encode straight to
//     the connection. Cheap, but an encode error surfaces only after the
//     200 header is on the wire, and a socket write failure is
//     indistinguishable from success (the Encode error was dropped).
//   - MarshalPerRequest: the obvious error-capturing fix — marshal into a
//     fresh buffer, then write once. Pays one buffer allocation per
//     request.
//   - Pooled: writeJSON — a sync.Pool-recycled buffer with its encoder
//     pre-bound. Error capture at Stream's allocation count: pooling
//     removes MarshalPerRequest's per-request buffer.

import (
	"encoding/json"
	"net/http"
	"testing"
)

// discardResponseWriter is a no-op http.ResponseWriter with reusable
// header state, so the benchmarks measure encoding, not a recorder.
type discardResponseWriter struct{ h http.Header }

func (d *discardResponseWriter) Header() http.Header         { return d.h }
func (d *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponseWriter) WriteHeader(int)             {}

var benchCheckResult = CheckResult{
	Allowed:            true,
	Cached:             true,
	FilterInstructions: 83,
	Action:             "SCMP_ACT_ALLOW",
}

func BenchmarkWriteJSONPooled(b *testing.B) {
	s := New(Options{})
	w := &discardResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.writeJSON(w, http.StatusOK, benchCheckResult)
	}
}

func BenchmarkWriteJSONStream(b *testing.B) {
	w := &discardResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		json.NewEncoder(w).Encode(benchCheckResult)
	}
}

func BenchmarkWriteJSONMarshalPerRequest(b *testing.B) {
	w := &discardResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(benchCheckResult)
		if err != nil {
			b.Fatal(err)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	}
}
