package server_test

// Shared-memory front-end tests: end-to-end over a real mmap'd region and
// unix control socket, the shm-vs-in-process differential suite (the rings
// must be a transparent transport, Batcher fold included), and the
// 16-goroutine producer/consumer hammer over one ring pair that
// scripts/check.sh runs under -race. Everything skips cleanly where mmap
// is unavailable.

import (
	"context"
	"net"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"draco/internal/engine"
	"draco/internal/profilegen"
	"draco/internal/seccomp"
	"draco/internal/server"
	"draco/internal/server/client"
	"draco/internal/shm"
	"draco/internal/wire"
	"draco/internal/workloads"
)

// newShmServer starts a Server with an shm front end in a test-owned
// directory and returns it with a connected shm client. Skips the test on
// platforms without mmap support.
func newShmServer(t testing.TB, opts server.Options, sopts server.SessionOptions, copts client.ShmOptions) (*server.Server, *client.Shm) {
	t.Helper()
	srv, ss := newShmServerOnly(t, opts, sopts, server.ShmServerOptions{})
	sc, err := client.DialShm(ss.Dir(), copts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	return srv, sc
}

// newShmServerOnly starts the shm front end without dialing it, for tests
// that speak the handshake themselves or need server-side options.
func newShmServerOnly(t testing.TB, opts server.Options, sopts server.SessionOptions, ssopts server.ShmServerOptions) (*server.Server, *server.ShmServer) {
	t.Helper()
	if !shm.Supported() {
		t.Skip("shm transport unsupported on this platform")
	}
	srv := server.New(opts)
	ss, err := srv.NewSessionHub(sopts).NewShmServerOpts(t.TempDir(), ssopts)
	if err != nil {
		t.Fatal(err)
	}
	go ss.Serve()
	t.Cleanup(func() { ss.Close() })
	return srv, ss
}

func TestShmCheckAndBatch(t *testing.T) {
	srv, sc := newShmServer(t,
		server.Options{Shards: 4, DefaultProfile: seccomp.DockerDefault()},
		server.SessionOptions{}, client.ShmOptions{})
	ctx := context.Background()

	read := sidOf(t, "read")
	d, err := sc.Check(ctx, "t1", read, engine.Args{3, 0, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed || d.Cached || d.FilterInstructions != 0 {
		t.Fatalf("first check: %+v", d)
	}
	d, err = sc.Check(ctx, "t1", read, engine.Args{3, 0, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed || !d.Cached {
		t.Fatalf("second check: %+v", d)
	}
	d, err = sc.Check(ctx, "t1", sidOf(t, "init_module"), engine.Args{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed {
		t.Fatalf("init_module allowed: %+v", d)
	}

	calls := []engine.Call{
		{SID: read, Args: engine.Args{3, 0, 4096}},
		{SID: sidOf(t, "write"), Args: engine.Args{1, 0, 12}},
		{SID: sidOf(t, "init_module")},
	}
	ds, err := sc.CheckBatch(ctx, "t1", calls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 || !ds[0].Allowed || !ds[1].Allowed || ds[2].Allowed {
		t.Fatalf("batch decisions: %+v", ds)
	}

	// The session layer counts checks transport-independently; the shm
	// series count the transport itself.
	m := srv.Metrics()
	if got := m.WireChecks.Load(); got != 3 {
		t.Fatalf("WireChecks = %d, want 3", got)
	}
	if got := m.WireBatchCalls.Load(); got != 3 {
		t.Fatalf("WireBatchCalls = %d, want 3", got)
	}
	if m.ShmConnsTotal.Load() != 1 || m.ShmRings.Load() != 1 {
		t.Fatalf("conns=%d rings=%d", m.ShmConnsTotal.Load(), m.ShmRings.Load())
	}
	// 3 singles + 1 batch moved through the submission ring.
	if got := m.ShmFrames.Load(); got != 4 {
		t.Fatalf("ShmFrames = %d, want 4", got)
	}
}

func TestShmProfileSwapAndStats(t *testing.T) {
	_, sc := newShmServer(t, server.Options{Shards: 4},
		server.SessionOptions{}, client.ShmOptions{})
	ctx := context.Background()

	// Unknown tenant: the error frame comes back over the completion ring
	// and the connection stays usable.
	if _, err := sc.Check(ctx, "ghost", sidOf(t, "read"), engine.Args{}); err == nil {
		t.Fatal("check on unknown tenant succeeded")
	} else if _, ok := err.(*client.ServerError); !ok {
		t.Fatalf("want *client.ServerError, got %T: %v", err, err)
	}

	resp, err := sc.PutProfile(ctx, "web", "draco-sw", profileJSON(t, seccomp.DockerDefault()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "web" || resp.Engine != "draco-sw" || !resp.Created {
		t.Fatalf("profile response: %+v", resp)
	}

	read := sidOf(t, "read")
	for i := 0; i < 3; i++ {
		if _, err := sc.Check(ctx, "web", read, engine.Args{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := sc.Stats(ctx, "web")
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "web" || st.Engine != "draco-sw" || st.Checks != 3 {
		t.Fatalf("stats: %+v", st)
	}

	resp, err = sc.PutProfile(ctx, "web", "draco-concurrent", profileJSON(t, seccomp.GVisorDefault()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Engine != "draco-concurrent" || resp.Created {
		t.Fatalf("swap response: %+v", resp)
	}
	if _, err := sc.Check(ctx, "web", read, engine.Args{}); err != nil {
		t.Fatal(err)
	}
}

// TestShmCustomGeometryAndLimits exercises a non-default ring layout and
// the batch size guard against the smaller slots.
func TestShmCustomGeometryAndLimits(t *testing.T) {
	_, sc := newShmServer(t,
		server.Options{Shards: 4, DefaultProfile: seccomp.DockerDefault()},
		server.SessionOptions{},
		client.ShmOptions{SlotSize: 512, SubmitSlots: 8, CompleteSlots: 8})
	ctx := context.Background()

	max := sc.MaxBatchCalls("t")
	if max <= 0 || max >= 512/8 {
		t.Fatalf("MaxBatchCalls = %d for 512-byte slots", max)
	}
	calls := make([]engine.Call, max)
	read := sidOf(t, "read")
	for i := range calls {
		calls[i] = engine.Call{SID: read, Args: engine.Args{uint64(i)}}
	}
	ds, err := sc.CheckBatch(ctx, "t", calls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != max {
		t.Fatalf("got %d decisions, want %d", len(ds), max)
	}
	// One call past the slot capacity must be rejected client-side.
	if _, err := sc.CheckBatch(ctx, "t", append(calls, engine.Call{SID: read}), nil); err == nil {
		t.Fatal("oversized batch accepted")
	}
	// More frames than ring slots: wrap-around works.
	for i := 0; i < 64; i++ {
		if _, err := sc.Check(ctx, "t", read, engine.Args{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShmMetricsPage proves the shm series render on /metrics.
func TestShmMetricsPage(t *testing.T) {
	srv, sc := newShmServer(t,
		server.Options{Shards: 4, DefaultProfile: seccomp.DockerDefault()},
		server.SessionOptions{}, client.ShmOptions{})
	if _, err := sc.Check(context.Background(), "t", sidOf(t, "read"), engine.Args{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	text, err := client.New(ts.URL, ts.Client()).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"dracod_shm_conns_active 1",
		"dracod_shm_conns_total 1",
		"dracod_shm_rings_total 1",
		"dracod_shm_frames_total 1",
		"dracod_shm_wake_total ",
		"dracod_shm_park_total ",
		"dracod_shm_spin_budget{ring=\"1\"} ",
		"dracod_shm_doorbell_conns{mode=",
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("metrics page missing %q:\n%s", series, text)
		}
	}
}

// TestShmDifferentialAllWorkloads is the transport-transparency proof for
// the rings: on 100k-event traces of every workload, decisions served over
// shared memory — batch frames, pipelined singles through the coalescer,
// and singles folded by the client-side Batcher — are identical, cached
// flag included, to an in-process engine with the same configuration.
func TestShmDifferentialAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite replays 1.5M events through the rings")
	}
	const events = 100_000
	const singles = 10_000
	const shards = 4
	genOpts := profilegen.Options{IncludeRuntime: true}

	_, sc := newShmServer(t, server.Options{Shards: shards, Routing: "syscall"},
		server.SessionOptions{}, client.ShmOptions{})
	fold := client.NewBatcher(sc, client.BatcherOptions{})

	newRef := func(t *testing.T, p *seccomp.Profile) engine.Engine {
		t.Helper()
		ref, err := engine.New("draco-concurrent", engine.Options{Profile: p, Shards: shards, Routing: "syscall"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ref.Close() })
		return ref
	}

	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			tr := w.Generate(events, 0xD12AC0)
			p := profilegen.Complete(w.Name, tr, genOpts)
			pj := profileJSON(t, p)

			// Batch-frame replay vs a fresh in-process reference engine.
			if _, err := sc.PutProfile(ctx, w.Name, "", pj); err != nil {
				t.Fatal(err)
			}
			ref := newRef(t, p)
			chunk := sc.MaxBatchCalls(w.Name)
			calls := make([]engine.Call, 0, chunk)
			var ds []engine.Decision
			for off := 0; off < len(tr); off += chunk {
				end := off + chunk
				if end > len(tr) {
					end = len(tr)
				}
				calls = calls[:0]
				for _, ev := range tr[off:end] {
					calls = append(calls, engine.Call{SID: ev.SID, Args: ev.Args})
				}
				var err error
				ds, err = sc.CheckBatch(ctx, w.Name, calls, ds)
				if err != nil {
					t.Fatal(err)
				}
				for i, c := range calls {
					want := ref.Check(c.SID, c.Args)
					if ds[i] != want {
						t.Fatalf("batch event %d (sid=%d): shm %+v, in-process %+v", off+i, c.SID, ds[i], want)
					}
				}
			}

			// Single-check frames through the server-side coalescer,
			// sequentially, so the decision stream (cached flag included)
			// stays ordered.
			single := w.Name + "-single"
			if _, err := sc.PutProfile(ctx, single, "", pj); err != nil {
				t.Fatal(err)
			}
			ref2 := newRef(t, p)
			for i, ev := range tr[:singles] {
				got, err := sc.Check(ctx, single, ev.SID, ev.Args)
				if err != nil {
					t.Fatal(err)
				}
				if want := ref2.Check(ev.SID, ev.Args); got != want {
					t.Fatalf("single event %d (sid=%d): shm %+v, in-process %+v", i, ev.SID, got, want)
				}
			}

			// The same prefix through the client-side Batcher: a sequential
			// caller is always the lone flusher (batches of one), so
			// decisions — cached flag included — must still match exactly.
			folded := w.Name + "-fold"
			if _, err := sc.PutProfile(ctx, folded, "", pj); err != nil {
				t.Fatal(err)
			}
			ref3 := newRef(t, p)
			for i, ev := range tr[:singles] {
				got, err := fold.Check(ctx, folded, ev.SID, ev.Args)
				if err != nil {
					t.Fatal(err)
				}
				if want := ref3.Check(ev.SID, ev.Args); got != want {
					t.Fatalf("folded event %d (sid=%d): shm %+v, in-process %+v", i, ev.SID, got, want)
				}
			}
		})
	}
}

// TestShmHotSwapHammer is the -race workout for the ring pair: 16
// goroutines hammer one shm connection — checks through the Batcher fold
// and direct batches, all funneling into the single submission ring —
// while a writer hot-swaps the tenant's profile over the control socket
// (alternating engines, so whole-engine rebuilds race with ring traffic
// and coalesced flushes). Every request must complete without a
// transport- or request-level error.
func TestShmHotSwapHammer(t *testing.T) {
	_, sc := newShmServer(t, server.Options{Shards: 4},
		server.SessionOptions{}, client.ShmOptions{})
	fold := client.NewBatcher(sc, client.BatcherOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	docker := profileJSON(t, seccomp.DockerDefault())
	gvisor := profileJSON(t, seccomp.GVisorDefault())
	if _, err := sc.PutProfile(ctx, "hammer", "draco-concurrent", docker); err != nil {
		t.Fatal(err)
	}

	const goroutines, perG = 16, 200
	read := sidOf(t, "read")
	batch := []engine.Call{{SID: read, Args: engine.Args{3}}, {SID: sidOf(t, "close"), Args: engine.Args{3}}}
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines+1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var ds []engine.Decision
			for i := 0; i < perG; i++ {
				if i%8 == 7 {
					var err error
					ds, err = sc.CheckBatch(ctx, "hammer", batch, ds)
					if err != nil {
						errCh <- err
						return
					}
					continue
				}
				if _, err := fold.Check(ctx, "hammer", read, engine.Args{uint64(g), uint64(i)}); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		engines := []string{"draco-sw", "draco-concurrent"}
		bodies := [][]byte{docker, gvisor}
		for i := 0; i < 40; i++ {
			if _, err := sc.PutProfile(ctx, "hammer", engines[i%2], bodies[i%2]); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestShmDoorbellNegotiation runs a check round trip under every doorbell
// mode this platform supports, and proves the client sees the mechanism
// it asked for. Modes the platform lacks skip rather than fail.
func TestShmDoorbellNegotiation(t *testing.T) {
	cases := []struct {
		mode string
		want shm.DoorbellKind
		need shm.Caps
	}{
		{"socket", shm.DoorbellSocket, 0},
		{"futex", shm.DoorbellFutex, shm.CapDoorbellFutex},
		{"eventfd", shm.DoorbellEventfd, shm.CapDoorbellEventfd},
		{"auto", shm.PickDoorbell(shm.PlatformCaps(), shm.PlatformCaps()), 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.mode, func(t *testing.T) {
			if tc.need != 0 && !shm.PlatformCaps().Has(tc.need) {
				t.Skipf("platform lacks %v doorbell", tc.want)
			}
			_, ss := newShmServerOnly(t,
				server.Options{Shards: 4, DefaultProfile: seccomp.DockerDefault()},
				server.SessionOptions{}, server.ShmServerOptions{})
			sc, err := client.DialShm(ss.Dir(), client.ShmOptions{Doorbell: tc.mode})
			if err != nil {
				t.Fatal(err)
			}
			defer sc.Close()
			if got := sc.RingStats().Doorbell; got != tc.want {
				t.Fatalf("negotiated %v, want %v", got, tc.want)
			}
			ctx := context.Background()
			read := sidOf(t, "read")
			for i := 0; i < 300; i++ {
				if _, err := sc.Check(ctx, "t", read, engine.Args{uint64(i)}); err != nil {
					t.Fatal(err)
				}
				if i%50 == 49 {
					// Let both sides park so the real doorbell (not just the
					// spin path) carries some of the wakeups.
					time.Sleep(2 * time.Millisecond)
				}
			}
		})
	}
}

// TestShmHandshakeV1Downgrade speaks the PR-8 handshake — a 12-byte ring
// request with no capabilities word — against the v2 server and proves
// the negotiated region is the v1 layout: socket doorbell, no huge pages,
// and a working check round trip driven entirely by the old protocol
// (TypeWake frames both ways, fixed-spin polling).
func TestShmHandshakeV1Downgrade(t *testing.T) {
	if !shm.Supported() {
		t.Skip("shm transport unsupported on this platform")
	}
	_, ss := newShmServerOnly(t,
		server.Options{Shards: 4, DefaultProfile: seccomp.DockerDefault()},
		server.SessionOptions{}, server.ShmServerOptions{})
	nc, err := net.Dial("unix", filepath.Join(ss.Dir(), server.ShmSocketName))
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	w := wire.NewWriter(nc)
	r := wire.NewReader(nc)

	var req [12]byte // v1: three geometry words, no caps
	if err := w.Send(wire.TypeRingReq, 1, req[:]); err != nil {
		t.Fatal(err)
	}
	h, p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != wire.TypeRingResp {
		t.Fatalf("handshake answered %v (%q)", h.Type, p)
	}
	reg, err := shm.OpenFile(string(p))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	l := reg.Layout()
	if l.Doorbell != shm.DoorbellSocket || l.HugePages {
		t.Fatalf("v1 client negotiated %+v, want socket doorbell and no huge pages", l)
	}

	// One check, v1 style: publish, wake the server over the socket if it
	// parked, poll the completion ring.
	pos, buf := reg.Submit.Claim()
	if buf == nil {
		t.Fatal("claim failed")
	}
	payload := wire.AppendCheckReq(buf, "t", engine.Call{SID: sidOf(t, "read"), Args: engine.Args{3}})
	if err := reg.Submit.Publish(pos, uint8(wire.TypeCheckReq), 7, payload); err != nil {
		t.Fatal(err)
	}
	if reg.Submit.ConsumerParked() {
		if err := w.Send(wire.TypeWake, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	var f shm.Frame
	for {
		ok, err := reg.Complete.Consume(&f)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no completion within 10s")
		}
		runtime.Gosched()
	}
	if f.ID != 7 || wire.Type(f.Type) != wire.TypeCheckResp {
		t.Fatalf("completion %v id=%d", wire.Type(f.Type), f.ID)
	}
	reg.Complete.Release()
}

// TestShmServerDoorbellRestriction proves the server side of the
// negotiation: a server restricted to the socket doorbell downgrades a
// futex-capable client.
func TestShmServerDoorbellRestriction(t *testing.T) {
	if !shm.Supported() {
		t.Skip("shm transport unsupported on this platform")
	}
	_, ss := newShmServerOnly(t,
		server.Options{Shards: 4, DefaultProfile: seccomp.DockerDefault()},
		server.SessionOptions{}, server.ShmServerOptions{Doorbells: shm.CapDoorbellSocket})
	sc, err := client.DialShm(ss.Dir(), client.ShmOptions{Doorbell: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if got := sc.RingStats().Doorbell; got != shm.DoorbellSocket {
		t.Fatalf("restricted server negotiated %v, want socket", got)
	}
	if _, err := sc.Check(context.Background(), "t", sidOf(t, "read"), engine.Args{}); err != nil {
		t.Fatal(err)
	}
}

// TestShmHugePages proves the huge-page flag negotiates end to end (both
// sides opt in) and the transport still round-trips. The mapping itself
// gracefully falls back when the kernel has no huge pages reserved, so
// only the negotiated layout is asserted, not the page size.
func TestShmHugePages(t *testing.T) {
	if !shm.PlatformCaps().Has(shm.CapHugePages) {
		t.Skip("platform cannot request huge pages")
	}
	_, ss := newShmServerOnly(t,
		server.Options{Shards: 4, DefaultProfile: seccomp.DockerDefault()},
		server.SessionOptions{}, server.ShmServerOptions{HugePages: true})
	sc, err := client.DialShm(ss.Dir(), client.ShmOptions{HugePages: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if st := sc.RingStats(); !st.HugePages {
		t.Fatalf("huge pages not negotiated: %+v", st)
	}
	if _, err := sc.Check(context.Background(), "t", sidOf(t, "read"), engine.Args{}); err != nil {
		t.Fatal(err)
	}

	// A client that does not opt in must not get a huge-page region even
	// from a huge-page server.
	sc2, err := client.DialShm(ss.Dir(), client.ShmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc2.Close()
	if st := sc2.RingStats(); st.HugePages {
		t.Fatalf("huge pages forced on a non-advertising client: %+v", st)
	}
}
