package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"draco/internal/engine"
	"draco/internal/shm"
	"draco/internal/stats"
)

// histBuckets is the fixed latency bucket ladder: powers of two from 256ns
// to ~8.6s, plus an overflow bucket. Fixed buckets keep recording a single
// atomic increment — no allocation, no locks, no external deps.
const (
	histBuckets   = 26
	histBaseNanos = 256
)

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
type Histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	bound := int64(histBaseNanos)
	for i := 0; i < histBuckets-1; i++ {
		if ns < bound {
			return i
		}
		bound <<= 1
	}
	return histBuckets - 1
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNs.Add(uint64(max64(d.Nanoseconds(), 0)))
	h.buckets[bucketFor(d)].Add(1)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// MeanNanos returns the mean sample in nanoseconds (0 when empty).
func (h *Histogram) MeanNanos() uint64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sumNs.Load() / n
}

// Quantile returns an upper bound on the q-quantile latency in nanoseconds,
// resolved to bucket granularity (the bucket's lower bound is reported).
// q is clamped to [0,1]. The rank walk is the shared
// stats.BucketQuantileIndex, pinned against the original inline
// implementation by a differential test.
func (h *Histogram) Quantile(q float64) uint64 {
	var counts [histBuckets]uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	idx := stats.BucketQuantileIndex(counts[:], q)
	if idx < 0 {
		return 0
	}
	// Bucket i covers [2^(i-1)*histBaseNanos, 2^i*histBaseNanos); its
	// lower bound is histBaseNanos/2 << i.
	return uint64(histBaseNanos) >> 1 << idx
}

// sizeBuckets is the coalesced-batch-size bucket ladder: powers of two
// from 1 to 2048, plus an overflow bucket (MaxBatch is 4096).
const sizeBuckets = 13

// SizeHistogram is a fixed-bucket histogram of batch sizes, safe for
// concurrent use. Bucket i covers sizes in [2^(i-1)+1, 2^i] (bucket 0 is
// exactly size 1), so recording stays a single atomic increment.
type SizeHistogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [sizeBuckets]atomic.Uint64
}

// sizeBucketFor maps a batch size to its bucket index.
func sizeBucketFor(n int) int {
	if n < 1 {
		n = 1
	}
	bound := 1
	for i := 0; i < sizeBuckets-1; i++ {
		if n <= bound {
			return i
		}
		bound <<= 1
	}
	return sizeBuckets - 1
}

// Observe records one batch size.
func (h *SizeHistogram) Observe(n int) {
	h.count.Add(1)
	h.sum.Add(uint64(n))
	h.buckets[sizeBucketFor(n)].Add(1)
}

// Count returns the number of batches observed.
func (h *SizeHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the total calls across observed batches.
func (h *SizeHistogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the mean batch size (0 when empty).
func (h *SizeHistogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile batch size, resolved
// to bucket granularity. q is clamped to [0,1]. Shares the
// stats.BucketQuantileIndex rank walk with Histogram.Quantile.
func (h *SizeHistogram) Quantile(q float64) uint64 {
	var counts [sizeBuckets]uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	idx := stats.BucketQuantileIndex(counts[:], q)
	if idx < 0 {
		return 0
	}
	// Bucket i covers sizes (2^(i-1), 2^i]; its upper bound 2^i is the
	// reported value.
	return uint64(1) << idx
}

// Metrics is dracod's live counter set. Endpoint histograms are created up
// front so the hot path never takes a lock.
type Metrics struct {
	start     time.Time
	requests  map[string]*atomic.Uint64
	latencies map[string]*Histogram
	// BatchCalls counts individual calls submitted through /v1/check-batch.
	BatchCalls atomic.Uint64
	// ProfileSwaps counts successful profile uploads.
	ProfileSwaps atomic.Uint64
	// HTTPErrors counts requests answered with a 4xx/5xx status.
	HTTPErrors atomic.Uint64
	// EncodeErrors counts JSON response documents that failed to encode
	// (a programming error surfaced instead of a silent empty body).
	EncodeErrors atomic.Uint64
	// WriteErrors counts JSON response bodies the client connection
	// rejected mid-write (peer went away).
	WriteErrors atomic.Uint64

	// Wire-protocol front-end counters (the binary fast path).

	// WireConnsTotal counts accepted wire connections.
	WireConnsTotal atomic.Uint64
	// WireConnsActive tracks currently-open wire connections.
	WireConnsActive atomic.Int64
	// WireChecks counts single-check frames served.
	WireChecks atomic.Uint64
	// WireBatchCalls counts calls served through batch frames.
	WireBatchCalls atomic.Uint64
	// WireFlushes counts coalesced engine.CheckBatch invocations.
	WireFlushes atomic.Uint64
	// WireErrors counts error frames sent (request-level failures).
	WireErrors atomic.Uint64
	// WireFrameErrors counts framing failures that dropped a connection.
	WireFrameErrors atomic.Uint64
	// WireCoalesced histograms the sizes of coalesced check batches.
	WireCoalesced SizeHistogram
	// WireCheckLatency tracks submit-to-response-written time for
	// coalesced single checks.
	WireCheckLatency Histogram
	// WireBatchLatency tracks service time for batch frames.
	WireBatchLatency Histogram

	// Shared-memory front-end counters. Checks and batches moving over the
	// rings are counted by the session-layer (Wire*) series above, which
	// span every transport; these cover what is shm-specific.

	// ShmConnsTotal counts accepted shm control connections.
	ShmConnsTotal atomic.Uint64
	// ShmConnsActive tracks currently-open shm connections.
	ShmConnsActive atomic.Int64
	// ShmRings counts ring pairs established (one per handshake).
	ShmRings atomic.Uint64
	// ShmFrames counts frames consumed from submission rings.
	ShmFrames atomic.Uint64
	// ShmFrameErrors counts torn or corrupt slots that killed a session.
	ShmFrameErrors atomic.Uint64
	// ShmWakes counts doorbell rings sent to parked client reapers.
	ShmWakes atomic.Uint64
	// ShmParks accumulates server ring-consumer parks folded in from
	// spin controllers of torn-down rings; live rings contribute their
	// controllers' counts on top at render time (see shmParkTotal).
	ShmParks atomic.Uint64

	// shmLive registers each live ring's spin controller and doorbell kind
	// so the page can render per-ring budget gauges and per-mode
	// connection counts. Registration happens once per handshake — far off
	// the hot path — so a plain mutex is fine.
	shmMu   sync.Mutex
	shmLive map[uint64]shmRingEntry
}

// shmRingEntry is one live ring pair's metrics handle.
type shmRingEntry struct {
	spin *shm.SpinController
	kind shm.DoorbellKind
}

// addShmRing registers a ring pair's spin controller for gauge export.
func (m *Metrics) addShmRing(id uint64, spin *shm.SpinController, kind shm.DoorbellKind) {
	m.shmMu.Lock()
	if m.shmLive == nil {
		m.shmLive = make(map[uint64]shmRingEntry)
	}
	m.shmLive[id] = shmRingEntry{spin: spin, kind: kind}
	m.shmMu.Unlock()
}

// dropShmRing unregisters a torn-down ring pair, folding its park count
// into the durable base so dracod_shm_park_total never goes backwards.
func (m *Metrics) dropShmRing(id uint64, spin *shm.SpinController, kind shm.DoorbellKind) {
	m.ShmParks.Add(spin.Parks())
	m.shmMu.Lock()
	delete(m.shmLive, id)
	m.shmMu.Unlock()
}

// shmParkTotal is the monotone park counter: the folded base plus every
// live ring's controller.
func (m *Metrics) shmParkTotal() uint64 {
	total := m.ShmParks.Load()
	m.shmMu.Lock()
	for _, e := range m.shmLive {
		total += e.spin.Parks()
	}
	m.shmMu.Unlock()
	return total
}

// endpoint labels; one histogram each.
var endpointLabels = []string{"check", "check-batch", "profile", "stats", "metrics"}

// NewMetrics creates the counter set.
func NewMetrics() *Metrics {
	m := &Metrics{
		start:     time.Now(),
		requests:  make(map[string]*atomic.Uint64, len(endpointLabels)),
		latencies: make(map[string]*Histogram, len(endpointLabels)),
	}
	for _, e := range endpointLabels {
		m.requests[e] = &atomic.Uint64{}
		m.latencies[e] = &Histogram{}
	}
	return m
}

// ObserveRequest records one served request for an endpoint label.
func (m *Metrics) ObserveRequest(endpoint string, d time.Duration) {
	if r, ok := m.requests[endpoint]; ok {
		r.Add(1)
		m.latencies[endpoint].Observe(d)
	}
}

// Latency returns the histogram for an endpoint label (nil if unknown).
func (m *Metrics) Latency(endpoint string) *Histogram { return m.latencies[endpoint] }

// checkerTotals is the tenant-aggregated checker view the metrics page
// renders; the server fills it from the live checkers.
type checkerTotals struct {
	Tenants    int
	Checks     uint64
	SPTHits    uint64
	VATHits    uint64
	FilterRuns uint64
	Denied     uint64
	VATBytes   int
}

// observedTotals carries the engine.Counters observation streams the server
// hangs off every tenant engine: one aggregate, one per registry name.
type observedTotals struct {
	All             *engine.Counters
	ByEngine        map[string]*engine.Counters
	TenantsByEngine map[string]int
}

// WriteTo renders the metrics in a flat, plain-text exposition format
// (counter name, space, value — one per line, prometheus-style labels on
// the per-endpoint series).
func (m *Metrics) WriteTo(w io.Writer, totals checkerTotals, obs observedTotals) {
	fmt.Fprintf(w, "dracod_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	fmt.Fprintf(w, "dracod_tenants %d\n", totals.Tenants)
	fmt.Fprintf(w, "dracod_checks_total %d\n", totals.Checks)
	fmt.Fprintf(w, "dracod_cache_hits_total %d\n", totals.SPTHits+totals.VATHits)
	fmt.Fprintf(w, "dracod_spt_hits_total %d\n", totals.SPTHits)
	fmt.Fprintf(w, "dracod_vat_hits_total %d\n", totals.VATHits)
	fmt.Fprintf(w, "dracod_filter_runs_total %d\n", totals.FilterRuns)
	fmt.Fprintf(w, "dracod_denials_total %d\n", totals.Denied)
	fmt.Fprintf(w, "dracod_vat_bytes %d\n", totals.VATBytes)
	fmt.Fprintf(w, "dracod_batch_calls_total %d\n", m.BatchCalls.Load())
	fmt.Fprintf(w, "dracod_profile_swaps_total %d\n", m.ProfileSwaps.Load())
	fmt.Fprintf(w, "dracod_http_errors_total %d\n", m.HTTPErrors.Load())
	fmt.Fprintf(w, "dracod_http_encode_errors_total %d\n", m.EncodeErrors.Load())
	fmt.Fprintf(w, "dracod_http_write_errors_total %d\n", m.WriteErrors.Load())

	// Wire front-end series: the binary protocol's connection, frame, and
	// coalescing counters.
	fmt.Fprintf(w, "dracod_wire_conns_active %d\n", m.WireConnsActive.Load())
	fmt.Fprintf(w, "dracod_wire_conns_total %d\n", m.WireConnsTotal.Load())
	fmt.Fprintf(w, "dracod_wire_checks_total %d\n", m.WireChecks.Load())
	fmt.Fprintf(w, "dracod_wire_batch_calls_total %d\n", m.WireBatchCalls.Load())
	fmt.Fprintf(w, "dracod_wire_coalesced_flushes_total %d\n", m.WireFlushes.Load())
	fmt.Fprintf(w, "dracod_wire_errors_total %d\n", m.WireErrors.Load())
	fmt.Fprintf(w, "dracod_wire_frame_errors_total %d\n", m.WireFrameErrors.Load())
	if m.WireCoalesced.Count() > 0 {
		fmt.Fprintf(w, "dracod_wire_coalesced_batch_size_count %d\n", m.WireCoalesced.Count())
		fmt.Fprintf(w, "dracod_wire_coalesced_batch_size_mean %.2f\n", m.WireCoalesced.Mean())
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "dracod_wire_coalesced_batch_size{quantile=\"%g\"} %d\n", q, m.WireCoalesced.Quantile(q))
		}
	}
	for _, wh := range []struct {
		op string
		h  *Histogram
	}{{"check", &m.WireCheckLatency}, {"batch", &m.WireBatchLatency}} {
		if wh.h.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "dracod_wire_latency_mean_ns{op=%q} %d\n", wh.op, wh.h.MeanNanos())
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "dracod_wire_latency_ns{op=%q,quantile=\"%g\"} %d\n", wh.op, q, wh.h.Quantile(q))
		}
	}

	// Shared-memory front-end series.
	fmt.Fprintf(w, "dracod_shm_conns_active %d\n", m.ShmConnsActive.Load())
	fmt.Fprintf(w, "dracod_shm_conns_total %d\n", m.ShmConnsTotal.Load())
	fmt.Fprintf(w, "dracod_shm_rings_total %d\n", m.ShmRings.Load())
	fmt.Fprintf(w, "dracod_shm_frames_total %d\n", m.ShmFrames.Load())
	fmt.Fprintf(w, "dracod_shm_frame_errors_total %d\n", m.ShmFrameErrors.Load())
	fmt.Fprintf(w, "dracod_shm_wake_total %d\n", m.ShmWakes.Load())
	fmt.Fprintf(w, "dracod_shm_park_total %d\n", m.shmParkTotal())
	// Per-ring adaptive spin budgets and per-doorbell-mode connection
	// counts, from the live ring registry.
	m.shmMu.Lock()
	ringIDs := make([]uint64, 0, len(m.shmLive))
	for id := range m.shmLive {
		ringIDs = append(ringIDs, id)
	}
	sort.Slice(ringIDs, func(i, j int) bool { return ringIDs[i] < ringIDs[j] })
	modes := make(map[shm.DoorbellKind]int)
	for _, id := range ringIDs {
		e := m.shmLive[id]
		fmt.Fprintf(w, "dracod_shm_spin_budget{ring=\"%d\"} %d\n", id, e.spin.Budget())
		modes[e.kind]++
	}
	m.shmMu.Unlock()
	for _, k := range []shm.DoorbellKind{shm.DoorbellSocket, shm.DoorbellFutex, shm.DoorbellEventfd} {
		if n := modes[k]; n > 0 {
			fmt.Fprintf(w, "dracod_shm_doorbell_conns{mode=%q} %d\n", k, n)
		}
	}

	// Observation-layer series: fed per check by the engine.Observer hook,
	// independent of (and cross-checkable against) the engine stats above.
	if obs.All != nil {
		fmt.Fprintf(w, "dracod_observed_checks_total %d\n", obs.All.Checks())
		fmt.Fprintf(w, "dracod_observed_cache_hits_total %d\n", obs.All.CacheHits())
		fmt.Fprintf(w, "dracod_observed_denials_total %d\n", obs.All.Denied())
		fmt.Fprintf(w, "dracod_observed_check_cycles_total %d\n", obs.All.CheckCycles())
		for cl := engine.LatencyClass(0); cl < engine.NumLatencyClasses; cl++ {
			fmt.Fprintf(w, "dracod_check_class_total{class=%q} %d\n", cl.String(), obs.All.ByClass(cl))
		}
	}
	engines := make([]string, 0, len(obs.ByEngine))
	for name := range obs.ByEngine {
		engines = append(engines, name)
	}
	sort.Strings(engines)
	for _, name := range engines {
		c := obs.ByEngine[name]
		fmt.Fprintf(w, "dracod_engine_tenants{engine=%q} %d\n", name, obs.TenantsByEngine[name])
		fmt.Fprintf(w, "dracod_engine_checks_total{engine=%q} %d\n", name, c.Checks())
		fmt.Fprintf(w, "dracod_engine_cache_hits_total{engine=%q} %d\n", name, c.CacheHits())
		fmt.Fprintf(w, "dracod_engine_denials_total{engine=%q} %d\n", name, c.Denied())
	}

	labels := make([]string, len(endpointLabels))
	copy(labels, endpointLabels)
	sort.Strings(labels)
	for _, e := range labels {
		h := m.latencies[e]
		fmt.Fprintf(w, "dracod_http_requests_total{endpoint=%q} %d\n", e, m.requests[e].Load())
		if h.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "dracod_http_latency_mean_ns{endpoint=%q} %d\n", e, h.MeanNanos())
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "dracod_http_latency_ns{endpoint=%q,quantile=\"%g\"} %d\n", e, q, h.Quantile(q))
		}
	}
}
