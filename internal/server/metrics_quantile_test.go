package server

import (
	"math/rand"
	"testing"
	"time"
)

// refHistQuantile is a verbatim copy of the pre-refactor
// Histogram.Quantile bucket walk, kept as the reference the shared
// stats.BucketQuantileIndex path must reproduce exactly.
func refHistQuantile(counts []uint64, total uint64, q float64) uint64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	bound := uint64(histBaseNanos)
	for i := 0; i < histBuckets; i++ {
		seen += counts[i]
		if seen > rank {
			return bound >> 1
		}
		bound <<= 1
	}
	return bound >> 1
}

// refSizeQuantile is the pre-refactor SizeHistogram.Quantile walk.
func refSizeQuantile(counts []uint64, total uint64, q float64) uint64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	bound := uint64(1)
	for i := 0; i < sizeBuckets; i++ {
		seen += counts[i]
		if seen > rank {
			return bound
		}
		bound <<= 1
	}
	return bound >> 1
}

func TestHistogramQuantileMatchesOriginal(t *testing.T) {
	fixtures := [][]time.Duration{
		{},
		{0},
		{100 * time.Nanosecond},
		{time.Microsecond, 2 * time.Microsecond, 40 * time.Microsecond},
		{time.Millisecond, time.Millisecond, time.Second, 10 * time.Second},
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(500)
		fix := make([]time.Duration, n)
		for i := range fix {
			fix[i] = time.Duration(rng.Int63n(int64(20 * time.Second)))
		}
		fixtures = append(fixtures, fix)
	}
	for fi, fix := range fixtures {
		var h Histogram
		for _, d := range fix {
			h.Observe(d)
		}
		counts := make([]uint64, histBuckets)
		for i := range counts {
			counts[i] = h.buckets[i].Load()
		}
		for _, q := range []float64{-0.5, 0, 0.5, 0.9, 0.99, 1, 1.5} {
			got := h.Quantile(q)
			want := refHistQuantile(counts, h.Count(), q)
			if got != want {
				t.Errorf("fixture %d: Histogram.Quantile(%v) = %d, original = %d", fi, q, got, want)
			}
		}
	}
}

func TestSizeHistogramQuantileMatchesOriginal(t *testing.T) {
	fixtures := [][]int{
		{},
		{1},
		{1, 1, 1, 2, 3},
		{512, 512, 4096, 10000},
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(300)
		fix := make([]int, n)
		for i := range fix {
			fix[i] = 1 + rng.Intn(5000)
		}
		fixtures = append(fixtures, fix)
	}
	for fi, fix := range fixtures {
		var h SizeHistogram
		for _, n := range fix {
			h.Observe(n)
		}
		counts := make([]uint64, sizeBuckets)
		for i := range counts {
			counts[i] = h.buckets[i].Load()
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			got := h.Quantile(q)
			want := refSizeQuantile(counts, h.Count(), q)
			if got != want {
				t.Errorf("fixture %d: SizeHistogram.Quantile(%v) = %d, original = %d", fi, q, got, want)
			}
		}
	}
}
