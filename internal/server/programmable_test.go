package server_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"draco/internal/seccomp"
	"draco/internal/server"
	"draco/internal/server/client"
)

// examplePolicy loads one of the shipped demo profiles from
// examples/programmable, so these end-to-end tests prove the exact JSON
// files users copy actually work through dracod.
func examplePolicy(t testing.TB, file string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "examples", "programmable", file))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func checkSyscall(t *testing.T, c *client.Client, tenant, name string, args ...uint64) server.CheckResult {
	t.Helper()
	res, err := c.Check(context.Background(), server.CheckRequest{Tenant: tenant, Syscall: name, Args: args})
	if err != nil {
		t.Fatalf("check %s: %v", name, err)
	}
	return res
}

// TestProgrammableRateLimitE2E drives the shipped open() rate-limit policy
// through dracod: the 5th open — byte-identical to the first four — is
// denied, which no stateless whitelist can express. A profile re-upload
// starts a fresh map epoch, restoring the budget.
func TestProgrammableRateLimitE2E(t *testing.T) {
	_, c := newTestServer(t, server.Options{Shards: 4})
	ctx := context.Background()
	raw := examplePolicy(t, "rate-limit.json")
	if _, err := c.PutProfile(ctx, "rl", bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}

	for i := 1; i <= 4; i++ {
		if res := checkSyscall(t, c, "rl", "open", 0, 0); !res.Allowed {
			t.Fatalf("open %d denied under budget: %+v", i, res)
		}
	}
	res := checkSyscall(t, c, "rl", "open", 0, 0)
	if res.Allowed || res.Action != "errno(1)" {
		t.Fatalf("5th identical open: %+v (want errno(1) denial)", res)
	}
	// openat shares the budget, so it is denied too; reads are untouched.
	if res := checkSyscall(t, c, "rl", "openat", 0xffffff9c, 0, 0); res.Allowed {
		t.Fatalf("openat allowed past the shared budget: %+v", res)
	}
	if res := checkSyscall(t, c, "rl", "read", 3, 0, 4096); !res.Allowed {
		t.Fatalf("read denied by an open rate limit: %+v", res)
	}

	// Hot-swap epoch: re-uploading the same profile resets map state.
	pr, err := c.PutProfile(ctx, "rl", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Created || pr.Generation != 2 {
		t.Fatalf("re-upload: %+v", pr)
	}
	if res := checkSyscall(t, c, "rl", "open", 0, 0); !res.Allowed {
		t.Fatalf("open denied right after a fresh epoch: %+v", res)
	}
}

// TestProgrammableOpenBeforeReadE2E: the same read(fd, ...) request flips
// from denied to allowed once an open has been observed — a relational,
// order-dependent decision.
func TestProgrammableOpenBeforeReadE2E(t *testing.T) {
	_, c := newTestServer(t, server.Options{Shards: 4})
	if _, err := c.PutProfile(context.Background(), "seq", bytes.NewReader(examplePolicy(t, "open-before-read.json"))); err != nil {
		t.Fatal(err)
	}
	res := checkSyscall(t, c, "seq", "read", 3, 0, 4096)
	if res.Allowed || res.Action != "errno(9)" {
		t.Fatalf("read before any open: %+v (want errno(9))", res)
	}
	if res := checkSyscall(t, c, "seq", "open", 0, 0); !res.Allowed {
		t.Fatalf("open denied: %+v", res)
	}
	if res := checkSyscall(t, c, "seq", "read", 3, 0, 4096); !res.Allowed {
		t.Fatalf("identical read after open still denied: %+v", res)
	}
}

// TestProgrammablePhaseTighteningE2E: execve/socket are allowed during init
// and denied after the tenant marks itself serving via prctl — the
// whitelist never changes, the program narrows it over time.
func TestProgrammablePhaseTighteningE2E(t *testing.T) {
	_, c := newTestServer(t, server.Options{Shards: 4})
	if _, err := c.PutProfile(context.Background(), "svc", bytes.NewReader(examplePolicy(t, "phase-tightening.json"))); err != nil {
		t.Fatal(err)
	}
	if res := checkSyscall(t, c, "svc", "execve", 0, 0, 0); !res.Allowed {
		t.Fatalf("init-phase execve denied: %+v", res)
	}
	if res := checkSyscall(t, c, "svc", "socket", 2, 1, 0); !res.Allowed {
		t.Fatalf("init-phase socket denied: %+v", res)
	}
	if res := checkSyscall(t, c, "svc", "prctl", 1); !res.Allowed {
		t.Fatalf("prctl denied: %+v", res)
	}
	if res := checkSyscall(t, c, "svc", "execve", 0, 0, 0); res.Allowed {
		t.Fatalf("serve-phase execve allowed: %+v", res)
	}
	if res := checkSyscall(t, c, "svc", "socket", 2, 1, 0); res.Allowed {
		t.Fatalf("serve-phase socket allowed: %+v", res)
	}
	if res := checkSyscall(t, c, "svc", "read", 3, 0, 4096); !res.Allowed {
		t.Fatalf("ungated read denied: %+v", res)
	}
}

// TestProgrammableBitmapResolutionE2E pins the acceptance criterion at the
// API surface: under the server's default bitmap exec tier, syscalls whose
// programmable verdict is map-independent report zero executed filter
// instructions on every check, while the stateful open path executes the
// program each time. /metrics exposes both as prog-hit / prog-miss classes.
func TestProgrammableBitmapResolutionE2E(t *testing.T) {
	_, c := newTestServer(t, server.Options{Shards: 4})
	ctx := context.Background()
	if _, err := c.PutProfile(ctx, "bm", bytes.NewReader(examplePolicy(t, "rate-limit.json"))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for _, name := range []string{"read", "close", "write"} {
			if res := checkSyscall(t, c, "bm", name, 3, 0, 4096); !res.Allowed || res.FilterInstructions != 0 {
				t.Fatalf("const path %s round %d: %+v (want allowed, 0 instructions)", name, i, res)
			}
		}
	}
	if res := checkSyscall(t, c, "bm", "open", 0, 0); !res.Allowed || res.FilterInstructions == 0 {
		t.Fatalf("must-run open: %+v (want executed instructions)", res)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"prog-hit", "prog-miss"} {
		if !strings.Contains(text, class) {
			t.Fatalf("/metrics lacks %q class:\n%s", class, text)
		}
	}
}

// TestProgrammableBatchOrderE2E: stateful policies make batch order
// semantic — the server must evaluate a batch in submission order, so a
// batch of five opens has exactly the last one denied.
func TestProgrammableBatchOrderE2E(t *testing.T) {
	_, c := newTestServer(t, server.Options{Shards: 4})
	ctx := context.Background()
	if _, err := c.PutProfile(ctx, "batch", bytes.NewReader(examplePolicy(t, "rate-limit.json"))); err != nil {
		t.Fatal(err)
	}
	req := server.BatchRequest{Tenant: "batch"}
	for i := 0; i < 5; i++ {
		req.Calls = append(req.Calls, server.BatchCall{Syscall: "open", Args: []uint64{0, 0}})
	}
	results, err := c.CheckBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results[:4] {
		if !r.Allowed {
			t.Fatalf("batch open %d denied under budget: %+v", i+1, r)
		}
	}
	if results[4].Allowed {
		t.Fatalf("batch 5th open allowed: %+v", results[4])
	}
}

// TestProgrammableHWUploadRejected: uploading a programmable profile to a
// draco-hw tenant must fail with a clear error, not degrade silently.
func TestProgrammableHWUploadRejected(t *testing.T) {
	_, c := newTestServer(t, server.Options{Shards: 4})
	_, err := c.PutProfileEngine(context.Background(), "hw", "draco-hw", bytes.NewReader(examplePolicy(t, "rate-limit.json")))
	if err == nil {
		t.Fatal("draco-hw tenant accepted a programmable profile")
	}
	if !strings.Contains(err.Error(), "programmable") {
		t.Fatalf("rejection does not name the cause: %v", err)
	}
}

// TestProgrammableJSONRoundTrip: a parsed example profile re-serializes
// with its program and maps intact, and the re-parsed copy verifies again.
func TestProgrammableJSONRoundTrip(t *testing.T) {
	for _, file := range []string{"rate-limit.json", "open-before-read.json", "phase-tightening.json"} {
		p, err := seccomp.ReadJSON(bytes.NewReader(examplePolicy(t, file)), file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if p.Programmable == nil {
			t.Fatalf("%s: no programmable policy parsed", file)
		}
		var buf bytes.Buffer
		if err := seccomp.WriteJSON(&buf, p); err != nil {
			t.Fatalf("%s: write: %v", file, err)
		}
		p2, err := seccomp.ReadJSON(&buf, file)
		if err != nil {
			t.Fatalf("%s: re-read: %v", file, err)
		}
		if p2.Programmable == nil || p2.Programmable.Name != p.Programmable.Name {
			t.Fatalf("%s: programmable policy lost in round trip", file)
		}
		if len(p2.Programmable.Text) != len(p.Programmable.Text) {
			t.Fatalf("%s: program text changed in round trip", file)
		}
	}
}
