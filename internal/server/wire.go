package server

// The wire front end: dracod's length-prefixed binary protocol served over
// persistent, pipelined TCP connections (see internal/wire for framing).
//
// The interesting part is the adaptive batch coalescer. PR-3 gave
// concurrent.CheckBatch a shard-grouped path that takes one lock per shard
// per batch — but only the explicit batch endpoint exercised it. Here,
// concurrent single-check frames from *all* connections of a tenant are
// folded into one engine.CheckBatch call, AnyCall-style: fixed per-crossing
// cost (frame handling, tenant resolution, shard locking) is amortized over
// however many checks happen to be in flight. The policy is adaptive along
// three axes:
//
//   - drain signal: when a connection's read buffer empties (the client's
//     pipelined burst is consumed), its pending checks flush immediately —
//     a lone synchronous caller sees one batch of 1, no added latency;
//   - size bound: a batch reaching MaxCoalesce flushes inline on the
//     submitting goroutine, which is also the backpressure path — when
//     arrival outpaces checking, submitters do the checking themselves,
//     throttling the read loops behind TCP flow control;
//   - flush window: a timer flushes whatever accumulated within
//     FlushWindow, bounding tail latency when a burst spans connections
//     whose reads never drain simultaneously.
//
// Responses carry the request id, so out-of-order completion across the
// coalescer is fine; within one connection the client matches by id.
//
// Since the session-layer refactor the coalescer, frame dispatch, and
// tenant resolution live in session.go, shared with the shm and HTTP front
// ends; this file keeps only what is TCP-specific — listeners, connection
// lifecycle, and the read loop with its buffered-bytes drain signal.

import (
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"draco/internal/engine"
	"draco/internal/wire"
)

// WireOptions configures the wire front end (it mirrors SessionOptions for
// the servers that build their hub implicitly through NewWireServer).
type WireOptions struct {
	// MaxCoalesce bounds a coalesced batch (0 = DefaultMaxCoalesce; capped
	// at wire.MaxBatch).
	MaxCoalesce int
	// FlushWindow is the coalescer's timer backstop (0 = DefaultFlushWindow,
	// negative = no timer: flush only on drain or size).
	FlushWindow time.Duration
}

// WireServer serves the binary protocol for a Server. One WireServer may
// serve many listeners; all share the tenant set, metrics, and (through
// the hub) the coalescers.
type WireServer struct {
	hub *SessionHub

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	listeners map[net.Listener]struct{}
	closed    bool
}

// NewWireServer builds the wire front end over s with its own session hub.
// To share one hub across front ends, use NewSessionHub + hub.NewWireServer.
func (s *Server) NewWireServer(opts WireOptions) *WireServer {
	return s.NewSessionHub(SessionOptions(opts)).NewWireServer()
}

// NewWireServer builds a wire front end over the hub's session layer.
func (h *SessionHub) NewWireServer() *WireServer {
	return &WireServer{
		hub:       h,
		conns:     make(map[net.Conn]struct{}),
		listeners: make(map[net.Listener]struct{}),
	}
}

// Hub returns the session hub this front end serves through.
func (ws *WireServer) Hub() *SessionHub { return ws.hub }

// Serve accepts wire connections on ln until the listener fails or the
// server is closed. It blocks; run it in a goroutine next to the HTTP
// server.
func (ws *WireServer) Serve(ln net.Listener) error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		return errors.New("wire: server closed")
	}
	ws.listeners[ln] = struct{}{}
	ws.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			ws.mu.Lock()
			closed := ws.closed
			delete(ws.listeners, ln)
			ws.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		ws.mu.Lock()
		if ws.closed {
			ws.mu.Unlock()
			nc.Close()
			return nil
		}
		ws.conns[nc] = struct{}{}
		ws.mu.Unlock()
		ws.hub.s.metrics.WireConnsTotal.Add(1)
		ws.hub.s.metrics.WireConnsActive.Add(1)
		go ws.serveConn(nc)
	}
}

// Close shuts the wire front end: listeners stop accepting and open
// connections are closed.
func (ws *WireServer) Close() error {
	ws.mu.Lock()
	ws.closed = true
	for ln := range ws.listeners {
		ln.Close()
	}
	for nc := range ws.conns {
		nc.Close()
	}
	ws.mu.Unlock()
	return nil
}

// wireResponder answers through a wire.Writer (which is concurrency-safe
// and group-commits flushes).
type wireResponder struct{ w *wire.Writer }

func (r wireResponder) sendCheck(id uint64, d engine.Decision) { r.w.SendCheckResp(id, d) }
func (r wireResponder) send(t wire.Type, id uint64, p []byte)  { r.w.Send(t, id, p) }
func (r wireResponder) flush()                                 { r.w.Flush() }

// serveConn runs one connection's read loop.
func (ws *WireServer) serveConn(nc net.Conn) {
	defer func() {
		ws.mu.Lock()
		delete(ws.conns, nc)
		ws.mu.Unlock()
		nc.Close()
		ws.hub.s.metrics.WireConnsActive.Add(-1)
	}()
	r := wire.NewReader(nc)
	sess := ws.hub.newSession(wireResponder{w: wire.NewWriter(nc)})
	for {
		h, p, err := r.Next()
		if err != nil {
			if err != io.EOF {
				// Framing is unrecoverable: the stream position is lost.
				ws.hub.s.metrics.WireFrameErrors.Add(1)
				if err != io.ErrUnexpectedEOF && !errors.Is(err, net.ErrClosed) {
					log.Printf("dracod: wire %s: %v", nc.RemoteAddr(), err)
				}
			}
			sess.drain()
			return
		}
		sess.handleFrame(h.Type, h.ID, p)
		// Drain signal: the client's pipelined burst is fully consumed, so
		// nothing more is joining the batch from this connection — flush
		// what it contributed to.
		if r.Buffered() == 0 {
			sess.drain()
		}
	}
}
