package server

// The wire front end: dracod's length-prefixed binary protocol served over
// persistent, pipelined TCP connections (see internal/wire for framing).
//
// The interesting part is the adaptive batch coalescer. PR-3 gave
// concurrent.CheckBatch a shard-grouped path that takes one lock per shard
// per batch — but only the explicit batch endpoint exercised it. Here,
// concurrent single-check frames from *all* connections of a tenant are
// folded into one engine.CheckBatch call, AnyCall-style: fixed per-crossing
// cost (frame handling, tenant resolution, shard locking) is amortized over
// however many checks happen to be in flight. The policy is adaptive along
// three axes:
//
//   - drain signal: when a connection's read buffer empties (the client's
//     pipelined burst is consumed), its pending checks flush immediately —
//     a lone synchronous caller sees one batch of 1, no added latency;
//   - size bound: a batch reaching MaxCoalesce flushes inline on the
//     submitting goroutine, which is also the backpressure path — when
//     arrival outpaces checking, submitters do the checking themselves,
//     throttling the read loops behind TCP flow control;
//   - flush window: a timer flushes whatever accumulated within
//     FlushWindow, bounding tail latency when a burst spans connections
//     whose reads never drain simultaneously.
//
// Responses carry the request id, so out-of-order completion across the
// coalescer is fine; within one connection the client matches by id.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"draco/internal/engine"
	"draco/internal/wire"
)

// DefaultMaxCoalesce bounds how many single-check requests fold into one
// engine.CheckBatch call. It matches the PR-3 grouped-batch stack-buffer
// bound, so coalesced batches stay on the 0-alloc grouping path.
const DefaultMaxCoalesce = 512

// DefaultFlushWindow is the microsecond-scale timer backstop: the longest
// a submitted check waits for companions before flushing anyway.
const DefaultFlushWindow = 50 * time.Microsecond

// WireOptions configures the wire front end.
type WireOptions struct {
	// MaxCoalesce bounds a coalesced batch (0 = DefaultMaxCoalesce; capped
	// at wire.MaxBatch).
	MaxCoalesce int
	// FlushWindow is the coalescer's timer backstop (0 = DefaultFlushWindow,
	// negative = no timer: flush only on drain or size).
	FlushWindow time.Duration
}

// WireServer serves the binary protocol for a Server. One WireServer may
// serve many listeners; all share the tenant set, metrics, and coalescers.
type WireServer struct {
	s           *Server
	maxCoalesce int
	flushWindow time.Duration

	mu        sync.Mutex
	coalesce  map[string]*coalescer
	conns     map[net.Conn]struct{}
	listeners map[net.Listener]struct{}
	closed    bool
}

// NewWireServer builds the wire front end over s.
func (s *Server) NewWireServer(opts WireOptions) *WireServer {
	maxCo := opts.MaxCoalesce
	if maxCo <= 0 {
		maxCo = DefaultMaxCoalesce
	}
	if maxCo > wire.MaxBatch {
		maxCo = wire.MaxBatch
	}
	window := opts.FlushWindow
	if window == 0 {
		window = DefaultFlushWindow
	}
	return &WireServer{
		s:           s,
		maxCoalesce: maxCo,
		flushWindow: window,
		coalesce:    make(map[string]*coalescer),
		conns:       make(map[net.Conn]struct{}),
		listeners:   make(map[net.Listener]struct{}),
	}
}

// Serve accepts wire connections on ln until the listener fails or the
// server is closed. It blocks; run it in a goroutine next to the HTTP
// server.
func (ws *WireServer) Serve(ln net.Listener) error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		return errors.New("wire: server closed")
	}
	ws.listeners[ln] = struct{}{}
	ws.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			ws.mu.Lock()
			closed := ws.closed
			delete(ws.listeners, ln)
			ws.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		ws.mu.Lock()
		if ws.closed {
			ws.mu.Unlock()
			nc.Close()
			return nil
		}
		ws.conns[nc] = struct{}{}
		ws.mu.Unlock()
		ws.s.metrics.WireConnsTotal.Add(1)
		ws.s.metrics.WireConnsActive.Add(1)
		go ws.serveConn(nc)
	}
}

// Close shuts the wire front end: listeners stop accepting and open
// connections are closed.
func (ws *WireServer) Close() error {
	ws.mu.Lock()
	ws.closed = true
	for ln := range ws.listeners {
		ln.Close()
	}
	for nc := range ws.conns {
		nc.Close()
	}
	ws.mu.Unlock()
	return nil
}

// serveConn runs one connection's read loop.
func (ws *WireServer) serveConn(nc net.Conn) {
	defer func() {
		ws.mu.Lock()
		delete(ws.conns, nc)
		ws.mu.Unlock()
		nc.Close()
		ws.s.metrics.WireConnsActive.Add(-1)
	}()
	c := &wireConn{
		ws: ws,
		nc: nc,
		r:  wire.NewReader(nc),
		w:  wire.NewWriter(nc),
	}
	for {
		h, p, err := c.r.Next()
		if err != nil {
			if err != io.EOF {
				// Framing is unrecoverable: the stream position is lost.
				ws.s.metrics.WireFrameErrors.Add(1)
				if err != io.ErrUnexpectedEOF && !errors.Is(err, net.ErrClosed) {
					log.Printf("dracod: wire %s: %v", nc.RemoteAddr(), err)
				}
			}
			c.drain()
			return
		}
		switch h.Type {
		case wire.TypeCheckReq:
			c.handleCheck(h.ID, p)
		case wire.TypeBatchReq:
			c.handleBatch(h.ID, p)
		case wire.TypeProfileReq:
			c.handleProfile(h.ID, p)
		case wire.TypeStatsReq:
			c.handleStats(h.ID, p)
		default:
			c.sendError(h.ID, fmt.Errorf("unexpected %v frame", h.Type))
		}
		// Drain signal: the client's pipelined burst is fully consumed, so
		// nothing more is joining the batch from this connection — flush
		// what it contributed to.
		if c.r.Buffered() == 0 {
			c.drain()
		}
	}
}

// wireConn is one connection's state. Everything here is owned by the read
// loop goroutine except w, which coalescer flushes write to concurrently.
type wireConn struct {
	ws *WireServer
	nc net.Conn
	r  *wire.Reader
	w  *wire.Writer

	// respSeq dedupes response-flush targets inside one coalescer flush
	// (see coalescer.flush).
	respSeq atomic.Uint64

	// Tenant cache: single-tenant connections (the common case) resolve
	// the tenant and its coalescer without a map lookup or allocation.
	lastName []byte
	lastTen  *tenant
	lastCo   *coalescer

	// dirty lists coalescers this connection submitted to since its last
	// drain; almost always length 0 or 1.
	dirty []*coalescer

	// Batch-frame scratch, reused across frames (the read loop is the only
	// writer).
	calls   []engine.Call
	outs    []engine.Decision
	respBuf []byte
}

// sendError answers a request with an error frame.
func (c *wireConn) sendError(id uint64, err error) {
	c.ws.s.metrics.WireErrors.Add(1)
	buf := wire.GetBuffer()
	buf.B = append(buf.B[:0], err.Error()...)
	c.w.Send(wire.TypeError, id, buf.B)
	wire.PutBuffer(buf)
}

// resolve maps a tenant name (aliasing the frame payload) to its tenant
// and coalescer, through the connection-local cache on repeats.
func (c *wireConn) resolve(name []byte) (*tenant, *coalescer, error) {
	if c.lastTen != nil && bytes.Equal(name, c.lastName) {
		return c.lastTen, c.lastCo, nil
	}
	s := c.ws.s
	s.mu.RLock()
	t := s.tenants[string(name)] // no-copy map lookup
	s.mu.RUnlock()
	if t == nil {
		// Slow path: auto-provision (when configured) exactly like HTTP.
		var err error
		t, err = s.lookupTenant(string(name), "")
		if err != nil {
			return nil, nil, err
		}
	}
	co := c.ws.coalescerFor(t)
	c.lastName = append(c.lastName[:0], name...)
	c.lastTen, c.lastCo = t, co
	return t, co, nil
}

// coalescerFor returns the tenant's coalescer, creating it on first use.
// Coalescers are keyed by tenant name so engine rebuilds (profile uploads
// that switch mechanisms) keep their pending queue.
func (ws *WireServer) coalescerFor(t *tenant) *coalescer {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	co := ws.coalesce[t.name]
	if co == nil {
		co = &coalescer{ws: ws, t: t}
		ws.coalesce[t.name] = co
	}
	return co
}

// markDirty remembers a coalescer for this connection's next drain.
func (c *wireConn) markDirty(co *coalescer) {
	for _, d := range c.dirty {
		if d == co {
			return
		}
	}
	c.dirty = append(c.dirty, co)
}

// drain flushes every coalescer this connection fed, then pushes out any
// response bytes still buffered on the connection.
func (c *wireConn) drain() {
	for i, co := range c.dirty {
		co.flushPending()
		c.dirty[i] = nil
	}
	c.dirty = c.dirty[:0]
	c.w.Flush()
}

func (c *wireConn) handleCheck(id uint64, p []byte) {
	name, call, err := wire.DecodeCheckReq(p)
	if err != nil {
		c.sendError(id, err)
		return
	}
	_, co, err := c.resolve(name)
	if err != nil {
		c.sendError(id, err)
		return
	}
	co.submit(c, id, call)
	c.markDirty(co)
}

func (c *wireConn) handleBatch(id uint64, p []byte) {
	start := time.Now()
	name, seq, err := wire.DecodeBatchReq(p)
	if err != nil {
		c.sendError(id, err)
		return
	}
	t, _, err := c.resolve(name)
	if err != nil {
		c.sendError(id, err)
		return
	}
	c.calls = c.calls[:0]
	for i := 0; i < seq.Len(); i++ {
		c.calls = append(c.calls, seq.At(i))
	}
	c.outs = t.engine().CheckBatch(c.calls, c.outs[:0])
	c.respBuf = wire.AppendBatchResp(c.respBuf[:0], c.outs)
	c.w.Send(wire.TypeBatchResp, id, c.respBuf)
	m := c.ws.s.metrics
	m.WireBatchCalls.Add(uint64(seq.Len()))
	m.WireBatchLatency.Observe(time.Since(start))
}

func (c *wireConn) handleProfile(id uint64, p []byte) {
	name, engName, profileJSON, err := wire.DecodeProfileReq(p)
	if err != nil {
		c.sendError(id, err)
		return
	}
	// Control-plane frames settle the data plane first: pending coalesced
	// checks flush before the swap, so a client interleaving check and
	// profile frames on one connection sees its own program order.
	c.drain()
	resp, err := c.ws.s.putProfile(string(name), string(engName), bytes.NewReader(profileJSON))
	if err != nil {
		c.sendError(id, err)
		return
	}
	c.sendJSON(wire.TypeProfileResp, id, resp)
}

func (c *wireConn) handleStats(id uint64, p []byte) {
	name, err := wire.DecodeStatsReq(p)
	if err != nil {
		c.sendError(id, err)
		return
	}
	c.drain()
	s := c.ws.s
	s.mu.RLock()
	t := s.tenants[string(name)]
	s.mu.RUnlock()
	if t == nil {
		c.sendError(id, fmt.Errorf("unknown tenant %q", name))
		return
	}
	c.sendJSON(wire.TypeStatsResp, id, s.statsFor(t))
}

// sendJSON frames a control-plane response as a JSON payload.
func (c *wireConn) sendJSON(t wire.Type, id uint64, v any) {
	payload, err := json.Marshal(v)
	if err != nil {
		c.ws.s.metrics.EncodeErrors.Add(1)
		log.Printf("dracod: wire encoding %T response: %v", v, err)
		c.sendError(id, errors.New("response encoding failed"))
		return
	}
	c.w.Send(t, id, payload)
}

// --- the adaptive coalescer -------------------------------------------------

// coalescer folds a tenant's concurrent single-check requests into shared
// engine.CheckBatch calls.
type coalescer struct {
	ws *WireServer
	t  *tenant

	mu    sync.Mutex
	cur   *flushBatch
	timer *time.Timer
}

// pendingCheck is one queued single-check request's response routing.
type pendingCheck struct {
	conn  *wireConn
	id    uint64
	start time.Time
}

// flushBatch is the pooled per-flush working set: the queued requests,
// their decoded calls (parallel slices), the decision output buffer, and
// the distinct-connection scratch for response flushing.
type flushBatch struct {
	pend  []pendingCheck
	calls []engine.Call
	outs  []engine.Decision
	conns []*wireConn
}

var flushBatchPool = sync.Pool{New: func() any { return new(flushBatch) }}

// flushSeq stamps coalescer flushes so connection dedup in flush() is one
// atomic load per pending entry instead of a per-flush set.
var flushSeq atomic.Uint64

// submit queues one check. The batch flushes inline when it reaches the
// size bound (which is also the backpressure path); otherwise the first
// submission arms the flush-window timer as a latency backstop.
func (c *coalescer) submit(conn *wireConn, id uint64, call engine.Call) {
	start := time.Now()
	c.mu.Lock()
	b := c.cur
	if b == nil {
		b = flushBatchPool.Get().(*flushBatch)
		c.cur = b
	}
	b.pend = append(b.pend, pendingCheck{conn: conn, id: id, start: start})
	b.calls = append(b.calls, call)
	if len(b.pend) >= c.ws.maxCoalesce {
		c.cur = nil
		c.mu.Unlock()
		c.flush(b)
		return
	}
	if len(b.pend) == 1 && c.ws.flushWindow > 0 {
		if c.timer == nil {
			c.timer = time.AfterFunc(c.ws.flushWindow, c.flushPending)
		} else {
			c.timer.Reset(c.ws.flushWindow)
		}
	}
	c.mu.Unlock()
}

// flushPending detaches whatever is queued and flushes it. Called from the
// drain signal, the timer, and profile-swap settling.
func (c *coalescer) flushPending() {
	c.mu.Lock()
	b := c.cur
	c.cur = nil
	c.mu.Unlock()
	if b != nil {
		c.flush(b)
	}
}

// flush runs one coalesced engine.CheckBatch and routes each decision back
// to its connection. The engine is fetched per flush, so profile uploads
// that rebuild the tenant on a new mechanism take effect batch-to-batch.
func (c *coalescer) flush(b *flushBatch) {
	b.outs = c.t.engine().CheckBatch(b.calls, b.outs[:0])
	m := c.ws.s.metrics
	m.WireFlushes.Add(1)
	m.WireChecks.Add(uint64(len(b.pend)))
	m.WireCoalesced.Observe(len(b.pend))

	seq := flushSeq.Add(1)
	b.conns = b.conns[:0]
	for i := range b.pend {
		pc := &b.pend[i]
		pc.conn.w.SendCheckResp(pc.id, b.outs[i])
		if pc.conn.respSeq.Load() != seq {
			pc.conn.respSeq.Store(seq)
			b.conns = append(b.conns, pc.conn)
		}
	}
	for i, wc := range b.conns {
		wc.w.Flush()
		b.conns[i] = nil
	}
	for i := range b.pend {
		m.WireCheckLatency.Observe(time.Since(b.pend[i].start))
		b.pend[i] = pendingCheck{}
	}
	b.pend, b.calls, b.outs = b.pend[:0], b.calls[:0], b.outs[:0]
	b.conns = b.conns[:0]
	flushBatchPool.Put(b)
}
