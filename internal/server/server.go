// Package server implements dracod's HTTP serving layer: a stdlib-only JSON
// API that exposes the registered Draco check engines as a long-running,
// multi-tenant syscall-check service.
//
// Endpoints:
//
//	POST /v1/check                     check one system call
//	POST /v1/check-batch               check a batch (amortized, AnyCall-style)
//	PUT  /v1/tenants/{id}/profile      upload a Docker-format JSON profile (hot swap)
//	GET  /v1/tenants/{id}/stats        per-tenant checker statistics
//	GET  /metrics                      plain-text service counters and latency quantiles
//
// Each tenant owns one engine.Engine selected by registry name, so the HTTP
// surface can A/B mechanisms apples-to-apples: pass ?engine=<name> on a
// profile upload (or on the check that auto-provisions a tenant) to pick one
// of engine.Names(); the default is draco-concurrent. Engines whose registry
// entry is not concurrency-safe are wrapped with engine.Synchronized.
// Profile uploads hot-swap the tenant's profile without dropping in-flight
// checks; uploading with a different ?engine= rebuilds the tenant on the new
// mechanism (statistics and generation restart).
//
// Every tenant engine feeds the server's engine.Counters observers; /metrics
// renders the aggregate and per-engine observation streams alongside the
// HTTP counters.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"draco/internal/engine"
	"draco/internal/seccomp"
	"draco/internal/syscalls"
)

// MaxBatch bounds the number of calls accepted in one /v1/check-batch
// request; it keeps a single request from monopolizing shard locks.
const MaxBatch = 4096

// maxBodyBytes bounds request bodies (profiles included).
const maxBodyBytes = 8 << 20

// DefaultEngine is the engine used for tenants that never named one.
const DefaultEngine = "draco-concurrent"

// Options configures a Server.
type Options struct {
	// Shards is the per-tenant VAT shard fan-out for sharded engines
	// (0 = the engine's default).
	Shards int
	// Routing selects the shard-routing key for sharded engines:
	// "" or "syscall" (decision-exact), or "args" (spread hot syscalls).
	Routing string
	// DefaultEngine names the registry engine for tenants that do not pass
	// ?engine= ("" = DefaultEngine).
	DefaultEngine string
	// DefaultProfile, when non-nil, auto-provisions unknown tenants named
	// in check requests with this profile. When nil, tenants must upload a
	// profile before checking.
	DefaultProfile *seccomp.Profile
	// BPFExec selects the filter execution tier for every tenant engine:
	// "" or "bitmap" (compiled + constant-action bitmap, the default),
	// "compiled", or "interp" (the escape hatch).
	BPFExec string
}

// Server is the dracod service state.
type Server struct {
	opts    Options
	metrics *Metrics

	// obsAll aggregates observations across every tenant engine; obsByEngine
	// splits the same stream per registry name. Both are pre-built so the
	// check hot path never touches a map under a lock.
	obsAll      *engine.Counters
	obsByEngine map[string]*engine.Counters

	// hub is the session layer, set by NewSessionHub. When present, HTTP
	// single checks route through its coalescer so all front ends share one
	// check path; without one (a plain HTTP-only Server) checks go straight
	// to the tenant engine.
	hub atomic.Pointer[SessionHub]

	mu      sync.RWMutex
	tenants map[string]*tenant
}

// tenant binds a name to its engine. The engine pointer is swapped when a
// profile upload changes mechanisms, so reads go through engine().
type tenant struct {
	name string

	mu      sync.RWMutex
	engName string
	eng     engine.Engine
}

func (t *tenant) engine() engine.Engine {
	t.mu.RLock()
	e := t.eng
	t.mu.RUnlock()
	return e
}

func (t *tenant) engineName() string {
	t.mu.RLock()
	n := t.engName
	t.mu.RUnlock()
	return n
}

// New creates a server.
func New(opts Options) *Server {
	s := &Server{
		opts:        opts,
		metrics:     NewMetrics(),
		obsAll:      &engine.Counters{},
		obsByEngine: make(map[string]*engine.Counters),
		tenants:     make(map[string]*tenant),
	}
	for _, name := range engine.Names() {
		s.obsByEngine[name] = &engine.Counters{}
	}
	return s
}

// Metrics exposes the live counter set (for embedding programs).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Observed exposes the aggregate engine observation counters.
func (s *Server) Observed() *engine.Counters { return s.obsAll }

// --- API documents ---------------------------------------------------------

// CheckRequest asks for one system call decision. The syscall is named
// either by Syscall (x86-64 name) or by Num; Args carries up to six
// argument values (missing ones are zero).
type CheckRequest struct {
	Tenant  string   `json:"tenant"`
	Syscall string   `json:"syscall,omitempty"`
	Num     *int     `json:"num,omitempty"`
	Args    []uint64 `json:"args,omitempty"`
}

// CheckResult is one decision.
type CheckResult struct {
	Allowed bool `json:"allowed"`
	Cached  bool `json:"cached"`
	// FilterInstructions is the number of BPF instructions executed when
	// the filter ran (zero on cache hits).
	FilterInstructions int `json:"filterInstructions"`
	// Action is the seccomp action string (e.g. "allow", "errno(1)").
	Action string `json:"action"`
}

// BatchCall is one call inside a batch request.
type BatchCall struct {
	Syscall string   `json:"syscall,omitempty"`
	Num     *int     `json:"num,omitempty"`
	Args    []uint64 `json:"args,omitempty"`
}

// BatchRequest checks many calls in one round trip.
type BatchRequest struct {
	Tenant string      `json:"tenant"`
	Calls  []BatchCall `json:"calls"`
}

// BatchResponse carries per-call results in request order.
type BatchResponse struct {
	Results []CheckResult `json:"results"`
}

// StatsResponse reports one tenant's checker state.
type StatsResponse struct {
	Tenant      string `json:"tenant"`
	Engine      string `json:"engine"`
	Profile     string `json:"profile"`
	Generation  uint64 `json:"generation"`
	Shards      int    `json:"shards"`
	Routing     string `json:"routing,omitempty"`
	Checks      uint64 `json:"checks"`
	SPTHits     uint64 `json:"sptHits"`
	VATHits     uint64 `json:"vatHits"`
	FilterRuns  uint64 `json:"filterRuns"`
	FilterInsns uint64 `json:"filterInstructions"`
	Inserts     uint64 `json:"inserts"`
	Denied      uint64 `json:"denied"`
	VATBytes    int    `json:"vatBytes"`
}

// ProfileResponse acknowledges a profile upload.
type ProfileResponse struct {
	Tenant     string `json:"tenant"`
	Engine     string `json:"engine"`
	Profile    string `json:"profile"`
	Generation uint64 `json:"generation"`
	Syscalls   int    `json:"syscalls"`
	// Created reports whether this upload provisioned a new tenant (false:
	// an existing tenant's profile was hot-swapped).
	Created bool `json:"created"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

// --- handler ---------------------------------------------------------------

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", s.timed("check", s.handleCheck))
	mux.HandleFunc("POST /v1/check-batch", s.timed("check-batch", s.handleCheckBatch))
	mux.HandleFunc("PUT /v1/tenants/{id}/profile", s.timed("profile", s.handlePutProfile))
	mux.HandleFunc("GET /v1/tenants/{id}/stats", s.timed("stats", s.handleStats))
	mux.HandleFunc("GET /v1/tenants", s.timed("stats", s.handleListTenants))
	mux.HandleFunc("GET /metrics", s.timed("metrics", s.handleMetrics))
	return mux
}

func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		h(w, r)
		s.metrics.ObserveRequest(endpoint, time.Since(start))
	}
}

// jsonCodec is a pooled buffer with its encoder pre-bound, so the JSON
// path reuses both across requests: encode into the buffer, write it in
// one call, instead of allocating encoder state per request and streaming
// straight to the socket (where an encode error would already have emitted
// a 200 header).
type jsonCodec struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{New: func() any {
	c := new(jsonCodec)
	c.enc = json.NewEncoder(&c.buf)
	return c
}}

// maxPooledJSONBuf caps what returns to the pool so one oversized response
// (a huge tenant listing) does not pin memory.
const maxPooledJSONBuf = 1 << 16

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	c := jsonBufPool.Get().(*jsonCodec)
	buf := &c.buf
	buf.Reset()
	if err := c.enc.Encode(v); err != nil {
		// An unencodable response document is a programming error; surface
		// it instead of silently truncating the body.
		s.metrics.EncodeErrors.Add(1)
		log.Printf("dracod: encoding %T response: %v", v, err)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		jsonBufPool.Put(c)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// The peer went away mid-response; count it so operators can tell
		// socket write failures apart from handler errors.
		s.metrics.WriteErrors.Add(1)
		log.Printf("dracod: writing %T response: %v", v, err)
	}
	if buf.Cap() <= maxPooledJSONBuf {
		jsonBufPool.Put(c)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.metrics.HTTPErrors.Add(1)
	s.writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// resolveEngineName applies the default chain and validates against the
// registry.
func (s *Server) resolveEngineName(requested string) (string, error) {
	name := requested
	if name == "" {
		name = s.opts.DefaultEngine
	}
	if name == "" {
		name = DefaultEngine
	}
	if _, ok := engine.Lookup(name); !ok {
		return "", fmt.Errorf("unknown engine %q (have %s)", name, strings.Join(engine.Names(), ", "))
	}
	return name, nil
}

// newEngine builds one tenant engine, wires the server's observers in, and
// wraps mechanisms that are not concurrency-safe.
func (s *Server) newEngine(name string, p *seccomp.Profile) (engine.Engine, error) {
	e, err := engine.New(name, engine.Options{
		Profile:  p,
		Shards:   s.opts.Shards,
		Routing:  s.opts.Routing,
		BPFExec:  s.opts.BPFExec,
		Observer: engine.MultiObserver{s.obsAll, s.obsByEngine[name]},
	})
	if err != nil {
		return nil, err
	}
	return engine.Synchronized(e), nil
}

// lookupTenant resolves a tenant for checking, auto-provisioning it with
// the default profile when one is configured. engineName, when non-empty,
// selects the engine for auto-provisioning and must match an existing
// tenant's engine.
func (s *Server) lookupTenant(name, engineName string) (*tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("missing tenant")
	}
	s.mu.RLock()
	t := s.tenants[name]
	s.mu.RUnlock()
	if t == nil {
		if s.opts.DefaultProfile == nil {
			return nil, fmt.Errorf("unknown tenant %q (upload a profile first)", name)
		}
		eng, err := s.resolveEngineName(engineName)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if t = s.tenants[name]; t == nil {
			e, err := s.newEngine(eng, s.opts.DefaultProfile)
			if err != nil {
				return nil, err
			}
			t = &tenant{name: name, engName: eng, eng: e}
			s.tenants[name] = t
		}
	}
	if engineName != "" && engineName != t.engineName() {
		return nil, fmt.Errorf("tenant %q runs engine %q, not %q (switch engines by re-uploading the profile with ?engine=)",
			name, t.engineName(), engineName)
	}
	return t, nil
}

// resolveCall turns a (syscall name, num, args) triple into an engine call.
func resolveCall(name string, num *int, args []uint64) (engine.Call, error) {
	var cl engine.Call
	switch {
	case name != "":
		in, ok := syscalls.ByName(name)
		if !ok {
			return cl, fmt.Errorf("unknown syscall %q", name)
		}
		if num != nil && *num != in.Num {
			return cl, fmt.Errorf("syscall %q is %d, not %d", name, in.Num, *num)
		}
		cl.SID = in.Num
	case num != nil:
		if *num < 0 || *num > syscalls.MaxNum() {
			return cl, fmt.Errorf("syscall number %d out of range [0,%d]", *num, syscalls.MaxNum())
		}
		cl.SID = *num
	default:
		return cl, fmt.Errorf("missing syscall name or number")
	}
	if len(args) > syscalls.MaxArgs {
		return cl, fmt.Errorf("%d args exceed the x86-64 maximum of %d", len(args), syscalls.MaxArgs)
	}
	copy(cl.Args[:], args)
	return cl, nil
}

func resultFrom(d engine.Decision) CheckResult {
	return CheckResult{
		Allowed:            d.Allowed,
		Cached:             d.Cached,
		FilterInstructions: d.FilterInstructions,
		Action:             d.Action.String(),
	}
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	t, err := s.lookupTenant(req.Tenant, r.URL.Query().Get("engine"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	cl, err := resolveCall(req.Syscall, req.Num, req.Args)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// With a session hub attached, single checks fold into the shared
	// coalescer next to wire and shm traffic; a hub-less server checks
	// directly.
	var d engine.Decision
	if h := s.hub.Load(); h != nil {
		d = h.Check(t, cl)
	} else {
		d = t.engine().Check(cl.SID, cl.Args)
	}
	s.writeJSON(w, http.StatusOK, resultFrom(d))
}

func (s *Server) handleCheckBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	if len(req.Calls) > MaxBatch {
		s.writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Calls), MaxBatch)
		return
	}
	t, err := s.lookupTenant(req.Tenant, r.URL.Query().Get("engine"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	calls := make([]engine.Call, len(req.Calls))
	for i, bc := range req.Calls {
		cl, err := resolveCall(bc.Syscall, bc.Num, bc.Args)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "call %d: %v", i, err)
			return
		}
		calls[i] = cl
	}
	outs := t.engine().CheckBatch(calls, nil)
	s.metrics.BatchCalls.Add(uint64(len(calls)))
	resp := BatchResponse{Results: make([]CheckResult, len(outs))}
	for i, d := range outs {
		resp.Results[i] = resultFrom(d)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// putProfile uploads (or hot-swaps) a tenant's profile. It is the shared
// core of the HTTP handler and the wire front end's profile frames.
func (s *Server) putProfile(id, requested string, body io.Reader) (ProfileResponse, error) {
	if id == "" {
		return ProfileResponse{}, fmt.Errorf("missing tenant id")
	}
	if requested != "" {
		if _, ok := engine.Lookup(requested); !ok {
			return ProfileResponse{}, fmt.Errorf("unknown engine %q (have %s)", requested, strings.Join(engine.Names(), ", "))
		}
	}
	p, err := seccomp.ReadJSON(body, id)
	if err != nil {
		return ProfileResponse{}, err
	}

	s.mu.Lock()
	t := s.tenants[id]
	created := t == nil
	if created {
		eng, err := s.resolveEngineName(requested)
		if err != nil {
			s.mu.Unlock()
			return ProfileResponse{}, err
		}
		e, err := s.newEngine(eng, p)
		if err != nil {
			s.mu.Unlock()
			return ProfileResponse{}, err
		}
		t = &tenant{name: id, engName: eng, eng: e}
		s.tenants[id] = t
		s.mu.Unlock()
	} else {
		// Swap outside the registry lock: SetProfile compiles filters per
		// shard, and in-flight checks must keep flowing meanwhile.
		s.mu.Unlock()
		if requested != "" && requested != t.engineName() {
			// Mechanism switch: rebuild the tenant on the new engine. The
			// old engine keeps serving in-flight checks until the swap.
			e, err := s.newEngine(requested, p)
			if err != nil {
				return ProfileResponse{}, err
			}
			t.mu.Lock()
			old := t.eng
			t.eng, t.engName = e, requested
			t.mu.Unlock()
			old.Close()
		} else if err := t.engine().SetProfile(p); err != nil {
			return ProfileResponse{}, err
		}
	}
	s.metrics.ProfileSwaps.Add(1)
	e := t.engine()
	return ProfileResponse{
		Tenant:     id,
		Engine:     t.engineName(),
		Profile:    p.Name,
		Generation: e.Describe().Generation,
		Syscalls:   p.NumSyscalls(),
		Created:    created,
	}, nil
}

func (s *Server) handlePutProfile(w http.ResponseWriter, r *http.Request) {
	resp, err := s.putProfile(r.PathValue("id"), r.URL.Query().Get("engine"), r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) statsFor(t *tenant) StatsResponse {
	e := t.engine()
	st := e.Stats()
	d := e.Describe()
	return StatsResponse{
		Tenant:      t.name,
		Engine:      d.Engine,
		Profile:     d.Profile,
		Generation:  d.Generation,
		Shards:      d.Shards,
		Routing:     d.Routing,
		Checks:      st.Checks,
		SPTHits:     st.SPTHits,
		VATHits:     st.VATHits,
		FilterRuns:  st.FilterRuns,
		FilterInsns: st.FilterInsns,
		Inserts:     st.Inserts,
		Denied:      st.Denied,
		VATBytes:    e.VATBytes(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.RLock()
	t := s.tenants[id]
	s.mu.RUnlock()
	if t == nil {
		s.writeError(w, http.StatusNotFound, "unknown tenant %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, s.statsFor(t))
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	s.writeJSON(w, http.StatusOK, map[string][]string{"tenants": names})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.RUnlock()
	totals := checkerTotals{Tenants: len(tenants)}
	tenantsByEngine := make(map[string]int)
	for _, t := range tenants {
		e := t.engine()
		st := e.Stats()
		totals.Checks += st.Checks
		totals.SPTHits += st.SPTHits
		totals.VATHits += st.VATHits
		totals.FilterRuns += st.FilterRuns
		totals.Denied += st.Denied
		totals.VATBytes += e.VATBytes()
		tenantsByEngine[t.engineName()]++
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.WriteTo(w, totals, observedTotals{
		All:             s.obsAll,
		ByEngine:        s.obsByEngine,
		TenantsByEngine: tenantsByEngine,
	})
}
