// Package server implements dracod's HTTP serving layer: a stdlib-only JSON
// API that exposes the concurrent Draco checker as a long-running,
// multi-tenant syscall-check service.
//
// Endpoints:
//
//	POST /v1/check                     check one system call
//	POST /v1/check-batch               check a batch (amortized, AnyCall-style)
//	PUT  /v1/tenants/{id}/profile      upload a Docker-format JSON profile (hot swap)
//	GET  /v1/tenants/{id}/stats        per-tenant checker statistics
//	GET  /metrics                      plain-text service counters and latency quantiles
//
// Each tenant owns one concurrent.Checker; profile uploads hot-swap the
// tenant's profile without dropping in-flight checks.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"draco/internal/concurrent"
	"draco/internal/seccomp"
	"draco/internal/syscalls"
)

// MaxBatch bounds the number of calls accepted in one /v1/check-batch
// request; it keeps a single request from monopolizing shard locks.
const MaxBatch = 4096

// maxBodyBytes bounds request bodies (profiles included).
const maxBodyBytes = 8 << 20

// Options configures a Server.
type Options struct {
	// Shards is the per-tenant VAT shard count (0 = concurrent.DefaultShards).
	Shards int
	// Routing selects the shard-routing key for tenant checkers.
	Routing concurrent.Routing
	// DefaultProfile, when non-nil, auto-provisions unknown tenants named
	// in check requests with this profile. When nil, tenants must upload a
	// profile before checking.
	DefaultProfile *seccomp.Profile
}

// Server is the dracod service state.
type Server struct {
	opts    Options
	metrics *Metrics

	mu      sync.RWMutex
	tenants map[string]*tenant
}

type tenant struct {
	name string
	chk  *concurrent.Checker
}

// New creates a server.
func New(opts Options) *Server {
	return &Server{
		opts:    opts,
		metrics: NewMetrics(),
		tenants: make(map[string]*tenant),
	}
}

// Metrics exposes the live counter set (for embedding programs).
func (s *Server) Metrics() *Metrics { return s.metrics }

// --- API documents ---------------------------------------------------------

// CheckRequest asks for one system call decision. The syscall is named
// either by Syscall (x86-64 name) or by Num; Args carries up to six
// argument values (missing ones are zero).
type CheckRequest struct {
	Tenant  string   `json:"tenant"`
	Syscall string   `json:"syscall,omitempty"`
	Num     *int     `json:"num,omitempty"`
	Args    []uint64 `json:"args,omitempty"`
}

// CheckResult is one decision.
type CheckResult struct {
	Allowed bool `json:"allowed"`
	Cached  bool `json:"cached"`
	// FilterInstructions is the number of BPF instructions executed when
	// the filter ran (zero on cache hits).
	FilterInstructions int `json:"filterInstructions"`
	// Action is the seccomp action string (e.g. "allow", "errno(1)").
	Action string `json:"action"`
}

// BatchCall is one call inside a batch request.
type BatchCall struct {
	Syscall string   `json:"syscall,omitempty"`
	Num     *int     `json:"num,omitempty"`
	Args    []uint64 `json:"args,omitempty"`
}

// BatchRequest checks many calls in one round trip.
type BatchRequest struct {
	Tenant string      `json:"tenant"`
	Calls  []BatchCall `json:"calls"`
}

// BatchResponse carries per-call results in request order.
type BatchResponse struct {
	Results []CheckResult `json:"results"`
}

// StatsResponse reports one tenant's checker state.
type StatsResponse struct {
	Tenant      string `json:"tenant"`
	Profile     string `json:"profile"`
	Generation  uint64 `json:"generation"`
	Shards      int    `json:"shards"`
	Routing     string `json:"routing"`
	Checks      uint64 `json:"checks"`
	SPTHits     uint64 `json:"sptHits"`
	VATHits     uint64 `json:"vatHits"`
	FilterRuns  uint64 `json:"filterRuns"`
	FilterInsns uint64 `json:"filterInstructions"`
	Inserts     uint64 `json:"inserts"`
	Denied      uint64 `json:"denied"`
	VATBytes    int    `json:"vatBytes"`
}

// ProfileResponse acknowledges a profile upload.
type ProfileResponse struct {
	Tenant     string `json:"tenant"`
	Profile    string `json:"profile"`
	Generation uint64 `json:"generation"`
	Syscalls   int    `json:"syscalls"`
	// Created reports whether this upload provisioned a new tenant (false:
	// an existing tenant's profile was hot-swapped).
	Created bool `json:"created"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

// --- handler ---------------------------------------------------------------

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", s.timed("check", s.handleCheck))
	mux.HandleFunc("POST /v1/check-batch", s.timed("check-batch", s.handleCheckBatch))
	mux.HandleFunc("PUT /v1/tenants/{id}/profile", s.timed("profile", s.handlePutProfile))
	mux.HandleFunc("GET /v1/tenants/{id}/stats", s.timed("stats", s.handleStats))
	mux.HandleFunc("GET /v1/tenants", s.timed("stats", s.handleListTenants))
	mux.HandleFunc("GET /metrics", s.timed("metrics", s.handleMetrics))
	return mux
}

func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		h(w, r)
		s.metrics.ObserveRequest(endpoint, time.Since(start))
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.metrics.HTTPErrors.Add(1)
	s.writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// lookupTenant resolves a tenant for checking, auto-provisioning it with
// the default profile when one is configured.
func (s *Server) lookupTenant(name string) (*tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("missing tenant")
	}
	s.mu.RLock()
	t := s.tenants[name]
	s.mu.RUnlock()
	if t != nil {
		return t, nil
	}
	if s.opts.DefaultProfile == nil {
		return nil, fmt.Errorf("unknown tenant %q (upload a profile first)", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t = s.tenants[name]; t != nil {
		return t, nil
	}
	chk, err := concurrent.NewCheckerRouted(s.opts.DefaultProfile, s.opts.Shards, s.opts.Routing)
	if err != nil {
		return nil, err
	}
	t = &tenant{name: name, chk: chk}
	s.tenants[name] = t
	return t, nil
}

// resolveCall turns a (syscall name, num, args) triple into a checker call.
func resolveCall(name string, num *int, args []uint64) (concurrent.Call, error) {
	var cl concurrent.Call
	switch {
	case name != "":
		in, ok := syscalls.ByName(name)
		if !ok {
			return cl, fmt.Errorf("unknown syscall %q", name)
		}
		if num != nil && *num != in.Num {
			return cl, fmt.Errorf("syscall %q is %d, not %d", name, in.Num, *num)
		}
		cl.SID = in.Num
	case num != nil:
		if *num < 0 || *num > syscalls.MaxNum() {
			return cl, fmt.Errorf("syscall number %d out of range [0,%d]", *num, syscalls.MaxNum())
		}
		cl.SID = *num
	default:
		return cl, fmt.Errorf("missing syscall name or number")
	}
	if len(args) > syscalls.MaxArgs {
		return cl, fmt.Errorf("%d args exceed the x86-64 maximum of %d", len(args), syscalls.MaxArgs)
	}
	copy(cl.Args[:], args)
	return cl, nil
}

func resultFrom(out concurrent.Outcome) CheckResult {
	return CheckResult{
		Allowed:            out.Allowed,
		Cached:             !out.FilterRan,
		FilterInstructions: out.FilterExecuted,
		Action:             out.Action.String(),
	}
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	t, err := s.lookupTenant(req.Tenant)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	cl, err := resolveCall(req.Syscall, req.Num, req.Args)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, resultFrom(t.chk.Check(cl.SID, cl.Args)))
}

func (s *Server) handleCheckBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	if len(req.Calls) > MaxBatch {
		s.writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Calls), MaxBatch)
		return
	}
	t, err := s.lookupTenant(req.Tenant)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	calls := make([]concurrent.Call, len(req.Calls))
	for i, bc := range req.Calls {
		cl, err := resolveCall(bc.Syscall, bc.Num, bc.Args)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "call %d: %v", i, err)
			return
		}
		calls[i] = cl
	}
	outs := t.chk.CheckBatch(calls, nil)
	s.metrics.BatchCalls.Add(uint64(len(calls)))
	resp := BatchResponse{Results: make([]CheckResult, len(outs))}
	for i, out := range outs {
		resp.Results[i] = resultFrom(out)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePutProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		s.writeError(w, http.StatusBadRequest, "missing tenant id")
		return
	}
	p, err := seccomp.ReadJSON(r.Body, id)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	t := s.tenants[id]
	created := t == nil
	if created {
		chk, err := concurrent.NewCheckerRouted(p, s.opts.Shards, s.opts.Routing)
		if err != nil {
			s.mu.Unlock()
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		t = &tenant{name: id, chk: chk}
		s.tenants[id] = t
		s.mu.Unlock()
	} else {
		// Swap outside the registry lock: SetProfile compiles filters per
		// shard, and in-flight checks must keep flowing meanwhile.
		s.mu.Unlock()
		if err := t.chk.SetProfile(p); err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	s.metrics.ProfileSwaps.Add(1)
	s.writeJSON(w, http.StatusOK, ProfileResponse{
		Tenant:     id,
		Profile:    p.Name,
		Generation: t.chk.Generation(),
		Syscalls:   p.NumSyscalls(),
		Created:    created,
	})
}

func (s *Server) statsFor(t *tenant) StatsResponse {
	st := t.chk.Stats()
	return StatsResponse{
		Tenant:      t.name,
		Profile:     t.chk.Profile().Name,
		Generation:  t.chk.Generation(),
		Shards:      t.chk.Shards(),
		Routing:     t.chk.Routing().String(),
		Checks:      st.Checks,
		SPTHits:     st.SPTHits,
		VATHits:     st.VATHits,
		FilterRuns:  st.FilterRuns,
		FilterInsns: st.FilterInsns,
		Inserts:     st.Inserts,
		Denied:      st.Denied,
		VATBytes:    t.chk.VATBytes(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.RLock()
	t := s.tenants[id]
	s.mu.RUnlock()
	if t == nil {
		s.writeError(w, http.StatusNotFound, "unknown tenant %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, s.statsFor(t))
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	s.writeJSON(w, http.StatusOK, map[string][]string{"tenants": names})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.RUnlock()
	totals := checkerTotals{Tenants: len(tenants)}
	for _, t := range tenants {
		st := t.chk.Stats()
		totals.Checks += st.Checks
		totals.SPTHits += st.SPTHits
		totals.VATHits += st.VATHits
		totals.FilterRuns += st.FilterRuns
		totals.Denied += st.Denied
		totals.VATBytes += t.chk.VATBytes()
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.WriteTo(w, totals)
}
