//go:build !linux

package server

import (
	"errors"
	"net"
)

// sendFrameWithFDs is Linux-only; the eventfd doorbell that needs it is
// never negotiated elsewhere (PlatformCaps excludes it), so this stub is
// unreachable and exists only to keep the build portable.
func sendFrameWithFDs(nc net.Conn, frame []byte, fds []int) error {
	return errors.New("shm: fd passing unsupported on this platform")
}
