package client

// Batcher unit tests against an in-process fake transport: fold
// correctness (every caller gets its own call's decision back, in any
// interleaving), the lone-caller fast path (a batch of one, flushed
// inline), aggregation under concurrency, error propagation, the
// transport cap, and the steady-state zero-allocation pin for the fold
// path.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"draco/internal/engine"
	"draco/internal/seccomp"
	"draco/internal/server"
	"draco/internal/shm"
)

// fakeTransport answers CheckBatch in-process: each decision echoes its
// call (FilterInstructions = SID, Action encodes Args[0]) so tests can
// prove responses landed with the right caller. Optionally gates batches
// to force folds to accumulate.
type fakeTransport struct {
	cap     int // MaxBatchCalls answer; 0 = no cap
	failAll error

	mu      sync.Mutex
	batches [][]engine.Call
	gate    chan struct{} // when non-nil, CheckBatch waits per batch
	entered chan struct{} // when gating, signals each CheckBatch entry

	calls   atomic.Int64
	maxSeen atomic.Int64
}

func decideFor(c engine.Call) engine.Decision {
	return engine.Decision{
		Allowed:            true,
		FilterInstructions: c.SID,
		Action:             seccomp.Errno(uint16(c.Args[0])),
	}
}

func (f *fakeTransport) CheckBatch(ctx context.Context, tenant string, calls []engine.Call, dst []engine.Decision) ([]engine.Decision, error) {
	if f.gate != nil {
		if f.entered != nil {
			f.entered <- struct{}{}
		}
		<-f.gate
	}
	if f.failAll != nil {
		return nil, f.failAll
	}
	f.mu.Lock()
	cp := make([]engine.Call, len(calls))
	copy(cp, calls)
	f.batches = append(f.batches, cp)
	f.mu.Unlock()
	f.calls.Add(int64(len(calls)))
	for {
		max := f.maxSeen.Load()
		if int64(len(calls)) <= max || f.maxSeen.CompareAndSwap(max, int64(len(calls))) {
			break
		}
	}
	dst = dst[:0]
	for _, c := range calls {
		dst = append(dst, decideFor(c))
	}
	return dst, nil
}

func (f *fakeTransport) Check(ctx context.Context, tenant string, sid int, args engine.Args) (engine.Decision, error) {
	ds, err := f.CheckBatch(ctx, tenant, []engine.Call{{SID: sid, Args: args}}, nil)
	if err != nil {
		return engine.Decision{}, err
	}
	return ds[0], nil
}

func (f *fakeTransport) PutProfile(ctx context.Context, tenant, engineName string, profileJSON []byte) (server.ProfileResponse, error) {
	return server.ProfileResponse{Tenant: tenant}, nil
}

func (f *fakeTransport) Stats(ctx context.Context, tenant string) (server.StatsResponse, error) {
	return server.StatsResponse{Tenant: tenant}, nil
}

func (f *fakeTransport) Close() error { return nil }

func (f *fakeTransport) MaxBatchCalls(tenant string) int {
	if f.cap > 0 {
		return f.cap
	}
	return DefaultMaxFold
}

// TestBatcherLoneCaller proves the fast path: a sequential caller is its
// own flusher, every check goes out as a batch of one immediately.
func TestBatcherLoneCaller(t *testing.T) {
	tr := &fakeTransport{}
	b := NewBatcher(tr, BatcherOptions{})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		d, err := b.Check(ctx, "t", i, engine.Args{uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if want := decideFor(engine.Call{SID: i, Args: engine.Args{uint64(i)}}); d != want {
			t.Fatalf("check %d: got %+v, want %+v", i, d, want)
		}
	}
	if got := tr.maxSeen.Load(); got != 1 {
		t.Fatalf("lone caller produced a batch of %d", got)
	}
	if got := len(tr.batches); got != 10 {
		t.Fatalf("%d batches for 10 sequential checks", got)
	}
}

// waitQueued polls until tenant's fold holds at least n pending waiters
// (the in-flight batch not included).
func waitQueued(t *testing.T, b *Batcher, tenant string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		b.mu.Lock()
		f := b.folds[tenant]
		b.mu.Unlock()
		if f != nil {
			f.mu.Lock()
			q := len(f.waiters)
			f.mu.Unlock()
			if q >= n {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("fold never accumulated %d waiters", n)
		}
		runtime.Gosched()
	}
}

// TestBatcherFolds proves aggregation: with the first flusher blocked
// inside the transport, callers that pile up behind its in-flight batch
// fold into one shared frame, and each still receives exactly its own
// decision. The gate/entered handshake makes the schedule deterministic
// even on one CPU.
func TestBatcherFolds(t *testing.T) {
	tr := &fakeTransport{gate: make(chan struct{}), entered: make(chan struct{}, 64)}
	b := NewBatcher(tr, BatcherOptions{})
	ctx := context.Background()

	const callers = 64
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	check := func(g int) {
		defer wg.Done()
		d, err := b.Check(ctx, "t", g, engine.Args{uint64(g)})
		if err != nil {
			errs <- err
			return
		}
		if want := decideFor(engine.Call{SID: g, Args: engine.Args{uint64(g)}}); d != want {
			errs <- errors.New("caller got someone else's decision")
		}
	}
	// The first caller becomes the flusher and blocks inside CheckBatch...
	wg.Add(1)
	go check(0)
	<-tr.entered
	// ...so the rest can only enqueue behind its in-flight batch.
	for g := 1; g < callers; g++ {
		wg.Add(1)
		go check(g)
	}
	waitQueued(t, b, "t", callers-1)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Release the blocked batch, then pair each further CheckBatch entry
	// with a release until every caller is answered.
	tr.gate <- struct{}{}
	for {
		select {
		case <-tr.entered:
			tr.gate <- struct{}{}
		case <-done:
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if got := tr.calls.Load(); got != callers {
				t.Fatalf("transport saw %d calls, want %d", got, callers)
			}
			if got := tr.maxSeen.Load(); got != callers-1 {
				t.Fatalf("fold flushed a max batch of %d, want %d", got, callers-1)
			}
			if got := len(tr.batches); got != 2 {
				t.Fatalf("%d batches for %d callers, want 2 (1 + folded %d)", got, callers, callers-1)
			}
			return
		}
	}
}

// TestBatcherRespectsTransportCap proves the fold honors a transport's
// per-batch limit (the shm slot capacity): 31 queued callers drain in
// cap-sized cuts, never one big frame.
func TestBatcherRespectsTransportCap(t *testing.T) {
	tr := &fakeTransport{cap: 4, gate: make(chan struct{}), entered: make(chan struct{}, 32)}
	b := NewBatcher(tr, BatcherOptions{})
	ctx := context.Background()

	const callers = 32
	var wg sync.WaitGroup
	check := func(g int) {
		defer wg.Done()
		if _, err := b.Check(ctx, "t", g, engine.Args{uint64(g)}); err != nil {
			t.Error(err)
		}
	}
	wg.Add(1)
	go check(0)
	<-tr.entered
	for g := 1; g < callers; g++ {
		wg.Add(1)
		go check(g)
	}
	waitQueued(t, b, "t", callers-1)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	tr.gate <- struct{}{}
	for {
		select {
		case <-tr.entered:
			tr.gate <- struct{}{}
		case <-done:
			if got := tr.maxSeen.Load(); got != 4 {
				t.Fatalf("max batch %d, want the transport cap of 4", got)
			}
			if got := tr.calls.Load(); got != callers {
				t.Fatalf("transport saw %d calls, want %d", got, callers)
			}
			return
		}
	}
}

// TestBatcherErrorPropagates proves a failed flush fails every folded
// caller with the transport's error.
func TestBatcherErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	b := NewBatcher(&fakeTransport{failAll: boom}, BatcherOptions{})
	if _, err := b.Check(context.Background(), "t", 1, engine.Args{}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
}

// TestBatcherPerTenantFolds proves tenants never share a frame.
func TestBatcherPerTenantFolds(t *testing.T) {
	tr := &fakeTransport{}
	b := NewBatcher(tr, BatcherOptions{})
	ctx := context.Background()
	if _, err := b.Check(ctx, "a", 1, engine.Args{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Check(ctx, "b", 2, engine.Args{2}); err != nil {
		t.Fatal(err)
	}
	if len(tr.batches) != 2 || len(tr.batches[0]) != 1 || len(tr.batches[1]) != 1 {
		t.Fatalf("batches: %+v", tr.batches)
	}
}

// TestZeroAllocsBatcherFold pins the fold path's steady-state allocations
// at zero, mirroring the ring pin in internal/shm: the waiter, the
// calls/outs scratch, and the decision hand-off are all pooled or reused.
// scripts/check.sh runs this without -race (the detector perturbs alloc
// accounting).
func TestZeroAllocsBatcherFold(t *testing.T) {
	if shm.RaceEnabled {
		t.Skip("allocation accounting is perturbed under the race detector")
	}
	bt := NewBatcher(echoTransport{&fakeTransport{}}, BatcherOptions{})
	ctx := context.Background()
	if _, err := bt.Check(ctx, "t", 1, engine.Args{1}); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(2000, func() {
		if _, err := bt.Check(ctx, "t", 1, engine.Args{1}); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Batcher fold path allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkBatcherFold pins the fold path's steady-state allocations at
// zero: scripts/check.sh fails the build if this regresses. The waiter,
// the calls/outs scratch, and the decision hand-off are all pooled or
// reused; the transport is an in-process echo so only Batcher overhead is
// measured.
func BenchmarkBatcherFold(b *testing.B) {
	tr := &fakeTransport{}
	// Bypass the recording fake: batches/maxSeen bookkeeping allocates.
	bt := NewBatcher(echoTransport{tr}, BatcherOptions{})
	ctx := context.Background()
	if _, err := bt.Check(ctx, "t", 1, engine.Args{1}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bt.Check(ctx, "t", 1, engine.Args{1}); err != nil {
			b.Fatal(err)
		}
	}
}

// echoTransport is the zero-bookkeeping fake for the allocation pin.
type echoTransport struct{ *fakeTransport }

func (e echoTransport) CheckBatch(ctx context.Context, tenant string, calls []engine.Call, dst []engine.Decision) ([]engine.Decision, error) {
	dst = dst[:0]
	for _, c := range calls {
		dst = append(dst, decideFor(c))
	}
	return dst, nil
}

func (e echoTransport) Check(ctx context.Context, tenant string, sid int, args engine.Args) (engine.Decision, error) {
	return decideFor(engine.Call{SID: sid, Args: args}), nil
}

// TestBatcherMaxInflight proves MaxInflight > 1 lets several flushers hold
// transport frames in flight at once: three staggered callers each become
// a flusher and sit in CheckBatch concurrently, a fourth (all slots taken)
// queues and is drained after the gate opens, and every caller still gets
// its own decision back.
func TestBatcherMaxInflight(t *testing.T) {
	tr := &fakeTransport{gate: make(chan struct{}), entered: make(chan struct{}, 16)}
	b := NewBatcher(tr, BatcherOptions{MaxInflight: 3})
	ctx := context.Background()

	const callers = 4
	var wg sync.WaitGroup
	results := make([]engine.Decision, callers)
	errs := make([]error, callers)
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = b.Check(ctx, "t", i, engine.Args{uint64(i)})
		}()
	}
	// One at a time: each caller must reach the transport (a free flusher
	// slot) before the next launches, so by the third we have proven three
	// concurrent in-flight frames.
	for i := 0; i < 3; i++ {
		launch(i)
		select {
		case <-tr.entered:
		case <-time.After(5 * time.Second):
			t.Fatalf("caller %d never reached the transport; in-flight slots not granted", i)
		}
	}
	// All slots taken: the fourth caller can only queue.
	launch(3)
	close(tr.gate)
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if want := decideFor(engine.Call{SID: i, Args: engine.Args{uint64(i)}}); results[i] != want {
			t.Fatalf("caller %d: got %+v, want %+v", i, results[i], want)
		}
	}
	if got := tr.calls.Load(); got != callers {
		t.Fatalf("transport served %d calls, want %d", got, callers)
	}
}
