package client

// Wire-protocol client: persistent pipelined TCP connections speaking the
// internal/wire framing. Unlike the HTTP client, many requests may be in
// flight per connection — each carries a request id, responses are matched
// by id (through the shared callTable in calls.go), and a background
// reader per connection dispatches completions. A small connection pool
// spreads concurrent callers so one slow response never
// heads-of-line-blocks the pool.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"draco/internal/engine"
	"draco/internal/server"
	"draco/internal/wire"
)

// WireOptions configures DialWire.
type WireOptions struct {
	// Conns is the connection-pool size (0 = 2). Concurrent callers are
	// spread round-robin; each connection pipelines its callers' requests.
	Conns int
	// DialTimeout bounds each connection attempt (0 = 5s).
	DialTimeout time.Duration
}

// Wire is a binary-protocol client for one dracod wire listener.
type Wire struct {
	addr  string
	conns []*wireConn
	next  atomic.Uint64
}

// ServerError is a request-level failure reported by the server in an
// error frame (the connection stays usable).
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "dracod: " + e.Msg }

// DialWire connects a pooled wire client to addr (host:port).
func DialWire(addr string, opts WireOptions) (*Wire, error) {
	n := opts.Conns
	if n <= 0 {
		n = 2
	}
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	w := &Wire{addr: addr, conns: make([]*wireConn, 0, n)}
	for i := 0; i < n; i++ {
		nc, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			// The protocol batches its own writes; Nagle only adds latency.
			tc.SetNoDelay(true)
		}
		c := &wireConn{
			nc:  nc,
			w:   wire.NewWriter(nc),
			tab: newCallTable(),
		}
		w.conns = append(w.conns, c)
		go c.readLoop()
	}
	return w, nil
}

// Close closes every pooled connection; in-flight requests fail.
func (w *Wire) Close() error {
	for _, c := range w.conns {
		if c != nil {
			c.nc.Close()
		}
	}
	return nil
}

// pick selects a connection round-robin, preferring live ones.
func (w *Wire) pick() *wireConn {
	start := w.next.Add(1)
	for i := 0; i < len(w.conns); i++ {
		c := w.conns[(start+uint64(i))%uint64(len(w.conns))]
		if c.tab.alive() {
			return c
		}
	}
	return w.conns[start%uint64(len(w.conns))]
}

// Check validates one system call over the wire.
func (w *Wire) Check(ctx context.Context, tenant string, sid int, args engine.Args) (engine.Decision, error) {
	if len(tenant) > wire.MaxTenant {
		return engine.Decision{}, fmt.Errorf("wire: tenant name exceeds %d bytes", wire.MaxTenant)
	}
	c := w.pick()
	buf := wire.GetBuffer()
	buf.B = wire.AppendCheckReq(buf.B[:0], tenant, engine.Call{SID: sid, Args: args})
	call, err := c.roundTrip(ctx, wire.TypeCheckReq, buf.B)
	wire.PutBuffer(buf)
	if err != nil {
		return engine.Decision{}, err
	}
	defer putWireCall(call)
	if err := call.respErr(wire.TypeCheckResp); err != nil {
		return engine.Decision{}, err
	}
	return call.decision, nil
}

// CheckBatch validates a batch in one frame, reusing dst when it has
// capacity. At most wire.MaxBatch calls per invocation.
func (w *Wire) CheckBatch(ctx context.Context, tenant string, calls []engine.Call, dst []engine.Decision) ([]engine.Decision, error) {
	if len(tenant) > wire.MaxTenant {
		return nil, fmt.Errorf("wire: tenant name exceeds %d bytes", wire.MaxTenant)
	}
	if len(calls) > wire.MaxBatch {
		return nil, fmt.Errorf("wire: batch of %d exceeds limit %d", len(calls), wire.MaxBatch)
	}
	c := w.pick()
	buf := wire.GetBuffer()
	buf.B = wire.AppendBatchReq(buf.B[:0], tenant, calls)
	call, err := c.roundTrip(ctx, wire.TypeBatchReq, buf.B)
	wire.PutBuffer(buf)
	if err != nil {
		return nil, err
	}
	defer putWireCall(call)
	if err := call.respErr(wire.TypeBatchResp); err != nil {
		return nil, err
	}
	return wire.DecodeBatchResp(call.raw, dst[:0])
}

// PutProfile uploads a Docker-format JSON profile over the wire,
// hot-swapping the tenant's policy. engineName selects the check engine
// ("" keeps the server default / the tenant's current engine).
func (w *Wire) PutProfile(ctx context.Context, tenant, engineName string, profileJSON []byte) (server.ProfileResponse, error) {
	var out server.ProfileResponse
	if len(tenant) > wire.MaxTenant {
		return out, fmt.Errorf("wire: tenant name exceeds %d bytes", wire.MaxTenant)
	}
	c := w.pick()
	buf := wire.GetBuffer()
	buf.B = wire.AppendProfileReq(buf.B[:0], tenant, engineName, profileJSON)
	call, err := c.roundTrip(ctx, wire.TypeProfileReq, buf.B)
	wire.PutBuffer(buf)
	if err != nil {
		return out, err
	}
	defer putWireCall(call)
	if err := call.respErr(wire.TypeProfileResp); err != nil {
		return out, err
	}
	err = json.Unmarshal(call.raw, &out)
	return out, err
}

// Stats fetches a tenant's checker statistics over the wire.
func (w *Wire) Stats(ctx context.Context, tenant string) (server.StatsResponse, error) {
	var out server.StatsResponse
	c := w.pick()
	buf := wire.GetBuffer()
	buf.B = wire.AppendStatsReq(buf.B[:0], tenant)
	call, err := c.roundTrip(ctx, wire.TypeStatsReq, buf.B)
	wire.PutBuffer(buf)
	if err != nil {
		return out, err
	}
	defer putWireCall(call)
	if err := call.respErr(wire.TypeStatsResp); err != nil {
		return out, err
	}
	err = json.Unmarshal(call.raw, &out)
	return out, err
}

// --- connection -------------------------------------------------------------

// wireConn is one pooled connection: a shared writer, a reader goroutine,
// and the in-flight call table.
type wireConn struct {
	nc  net.Conn
	w   *wire.Writer
	tab *callTable
}

// roundTrip registers a request, sends its frame, and waits for the
// response or ctx. The returned wireCall must go back via putWireCall.
func (c *wireConn) roundTrip(ctx context.Context, t wire.Type, payload []byte) (*wireCall, error) {
	id, call, err := c.tab.register()
	if err != nil {
		return nil, err
	}
	if err := c.w.Send(t, id, payload); err != nil {
		c.tab.drop(id, call)
		return nil, err
	}
	return c.tab.await(ctx, id, call)
}

// readLoop dispatches responses to their waiting callers until the
// connection dies, then fails every remaining in-flight request.
func (c *wireConn) readLoop() {
	r := wire.NewReader(c.nc)
	for {
		h, p, err := r.Next()
		if err != nil {
			c.tab.fail(fmt.Errorf("wire: connection lost: %w", err))
			c.nc.Close()
			return
		}
		c.tab.complete(h.Type, h.ID, p)
	}
}
