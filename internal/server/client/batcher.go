package client

// Client-side call aggregation. A Batcher sits in front of any Transport
// and folds concurrent Check calls into CheckBatch frames: callers enqueue
// onto a per-tenant fold queue, and whichever caller finds the queue idle
// becomes the flusher for everything that accumulated behind it. A lone
// caller therefore flushes itself immediately (a batch of one, no added
// latency), while N concurrent callers collapse into a handful of frames —
// the client-side mirror of the server's adaptive coalescer, and the
// second half of the paper's amortization story: batch on the way in,
// batch on the way out.
//
// A small time window backstops the fold for staggered arrivals, and a
// size bound (the transport's slot capacity for shm) caps frame size.

import (
	"context"
	"sync"
	"time"

	"draco/internal/engine"
	"draco/internal/server"
)

// DefaultFoldWindow is the aggregation backstop: a fold older than this is
// flushed by the timer even if no caller is draining the queue.
const DefaultFoldWindow = 50 * time.Microsecond

// DefaultMaxFold bounds calls per flushed batch when the transport does
// not impose a tighter limit.
const DefaultMaxFold = 512

// BatcherOptions configures NewBatcher.
type BatcherOptions struct {
	// MaxFold bounds calls folded into one CheckBatch (0 = 512, capped by
	// the transport's per-batch limit for shm transports).
	MaxFold int
	// FoldWindow is the flush backstop for staggered arrivals (0 = 50µs).
	FoldWindow time.Duration
	// MaxInflight bounds concurrent flush frames per tenant (0 = 1: one
	// flusher drains the queue while everyone else waits, the strictly
	// serialized default). Transports whose submission side is
	// multi-producer — the shm ring claims slots by CAS — can raise this
	// so several batch frames are in flight at once: more, smaller
	// batches, but no flusher convoy at high caller counts.
	MaxInflight int
}

// batchCapper is implemented by transports with a hard per-batch size
// limit (the shm client's slot capacity).
type batchCapper interface {
	MaxBatchCalls(tenant string) int
}

// Batcher folds concurrent Check calls into CheckBatch frames over an
// underlying Transport. It implements Transport itself, so it can drop in
// anywhere a transport is used. Check is safe for concurrent use; the
// remaining methods delegate straight to the underlying transport.
type Batcher struct {
	tr       Transport
	maxFold  int
	window   time.Duration
	inflight int

	mu    sync.Mutex
	folds map[string]*fold
}

// fold is one tenant's aggregation queue.
type fold struct {
	b      *Batcher
	tenant string
	max    int
	// maxInflight bounds concurrent flushers on this fold.
	maxInflight int

	mu      sync.Mutex
	waiters []*foldWaiter
	// inflight counts callers actively draining the queue; new arrivals
	// enqueue and wait unless a flusher slot is free.
	inflight int
	timer    *time.Timer

	// scratch for the single-inflight case, reused across flushes (the
	// lone flusher owns it exclusively). Concurrent flushers draw pooled
	// scratch instead.
	scratch foldScratch
}

// foldScratch is one flush's working set.
type foldScratch struct {
	calls []engine.Call
	outs  []engine.Decision
	batch []*foldWaiter
}

var foldScratchPool = sync.Pool{New: func() any { return new(foldScratch) }}

// foldWaiter is one caller's slot in a fold. Pooled.
type foldWaiter struct {
	call engine.Call
	d    engine.Decision
	err  error
	done chan struct{}
}

var foldWaiterPool = sync.Pool{New: func() any { return &foldWaiter{done: make(chan struct{}, 1)} }}

// NewBatcher wraps tr in a client-side aggregator.
func NewBatcher(tr Transport, opts BatcherOptions) *Batcher {
	maxFold := opts.MaxFold
	if maxFold <= 0 {
		maxFold = DefaultMaxFold
	}
	window := opts.FoldWindow
	if window <= 0 {
		window = DefaultFoldWindow
	}
	inflight := opts.MaxInflight
	if inflight <= 0 {
		inflight = 1
	}
	return &Batcher{
		tr:       tr,
		maxFold:  maxFold,
		window:   window,
		inflight: inflight,
		folds:    make(map[string]*fold),
	}
}

// foldFor returns tenant's fold, creating it on first use.
func (b *Batcher) foldFor(tenant string) *fold {
	b.mu.Lock()
	f := b.folds[tenant]
	if f == nil {
		max := b.maxFold
		if c, ok := b.tr.(batchCapper); ok {
			if cap := c.MaxBatchCalls(tenant); cap < max {
				max = cap
			}
		}
		f = &fold{b: b, tenant: tenant, max: max, maxInflight: b.inflight}
		b.folds[tenant] = f
	}
	b.mu.Unlock()
	return f
}

// Check enqueues one call onto the tenant's fold and waits for its
// decision. The enqueueing caller that finds the fold idle flushes it —
// batching emerges from concurrency instead of added latency.
func (b *Batcher) Check(ctx context.Context, tenant string, sid int, args engine.Args) (engine.Decision, error) {
	f := b.foldFor(tenant)
	w := foldWaiterPool.Get().(*foldWaiter)
	w.call = engine.Call{SID: sid, Args: args}
	w.d, w.err = engine.Decision{}, nil

	f.mu.Lock()
	f.waiters = append(f.waiters, w)
	if f.inflight < f.maxInflight {
		// A flusher slot is free: this caller drains the queue (and
		// anything that piles up while its flush frames are in flight).
		f.inflight++
		f.mu.Unlock()
		f.run()
	} else {
		if f.timer == nil {
			f.timer = time.AfterFunc(b.window, f.timerFlush)
		}
		f.mu.Unlock()
	}

	select {
	case <-w.done:
		d, err := w.d, w.err
		foldWaiterPool.Put(w)
		return d, err
	case <-ctx.Done():
		// The flusher owns w until it signals done; wait it out so the
		// waiter can be pooled, then honor the result it produced.
		<-w.done
		d, err := w.d, w.err
		foldWaiterPool.Put(w)
		return d, err
	}
}

// timerFlush is the window backstop: if the queue still has waiters and
// nobody is flushing, drain it from the timer goroutine.
func (f *fold) timerFlush() {
	f.mu.Lock()
	f.timer = nil
	if f.inflight > 0 || len(f.waiters) == 0 {
		f.mu.Unlock()
		return
	}
	f.inflight++
	f.mu.Unlock()
	f.run()
}

// run drains the fold until it is empty: cut a batch, send it, complete
// its waiters, repeat. At most maxInflight goroutines run this at a time
// per fold (the inflight counter); with the default of one, the lone
// flusher reuses the fold's own scratch, so the steady-state fold
// allocates nothing.
func (f *fold) run() {
	s := &f.scratch
	if f.maxInflight > 1 {
		s = foldScratchPool.Get().(*foldScratch)
		defer foldScratchPool.Put(s)
	}
	for {
		f.mu.Lock()
		if len(f.waiters) == 0 {
			f.inflight--
			f.mu.Unlock()
			return
		}
		n := len(f.waiters)
		if n > f.max {
			n = f.max
		}
		s.batch = append(s.batch[:0], f.waiters[:n]...)
		rest := copy(f.waiters, f.waiters[n:])
		for i := rest; i < len(f.waiters); i++ {
			f.waiters[i] = nil
		}
		f.waiters = f.waiters[:rest]
		f.mu.Unlock()

		s.calls = s.calls[:0]
		for _, w := range s.batch {
			s.calls = append(s.calls, w.call)
		}
		outs, err := f.b.tr.CheckBatch(context.Background(), f.tenant, s.calls, s.outs[:0])
		if err == nil {
			s.outs = outs
		}
		for i, w := range s.batch {
			if err != nil {
				w.err = err
			} else {
				w.d = outs[i]
			}
			s.batch[i] = nil
			w.done <- struct{}{}
		}
	}
}

// CheckBatch delegates: an explicit batch is already aggregated.
func (b *Batcher) CheckBatch(ctx context.Context, tenant string, calls []engine.Call, dst []engine.Decision) ([]engine.Decision, error) {
	return b.tr.CheckBatch(ctx, tenant, calls, dst)
}

// PutProfile delegates to the underlying transport.
func (b *Batcher) PutProfile(ctx context.Context, tenant, engineName string, profileJSON []byte) (server.ProfileResponse, error) {
	return b.tr.PutProfile(ctx, tenant, engineName, profileJSON)
}

// Stats delegates to the underlying transport.
func (b *Batcher) Stats(ctx context.Context, tenant string) (server.StatsResponse, error) {
	return b.tr.Stats(ctx, tenant)
}

// Close delegates to the underlying transport.
func (b *Batcher) Close() error { return b.tr.Close() }
