//go:build linux

package client

import (
	"net"
	"syscall"
)

// recvChunkWithFDs reads a chunk of stream bytes plus any SCM_RIGHTS file
// descriptors riding on it. Non-unix connections fall back to a plain
// read (no ancillary data to collect).
func recvChunkWithFDs(nc net.Conn, p []byte) (int, []int, error) {
	uc, ok := nc.(*net.UnixConn)
	if !ok {
		n, err := nc.Read(p)
		return n, nil, err
	}
	oob := make([]byte, syscall.CmsgSpace(4*4)) // room for a few fds
	n, oobn, _, _, err := uc.ReadMsgUnix(p, oob)
	var fds []int
	if oobn > 0 {
		if msgs, perr := syscall.ParseSocketControlMessage(oob[:oobn]); perr == nil {
			for _, m := range msgs {
				if got, ferr := syscall.ParseUnixRights(&m); ferr == nil {
					fds = append(fds, got...)
				}
			}
		}
	}
	return n, fds, err
}
