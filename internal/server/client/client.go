// Package client is the thin HTTP client for dracod's JSON API, used by
// the dracod binary's ctl subcommands and by programs embedding a remote
// checker.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"draco/internal/server"
)

// Client talks to one dracod instance.
type Client struct {
	base string
	hc   *http.Client
}

// New creates a client for a base URL such as "http://127.0.0.1:8477".
// The URL must not end with a path; a trailing slash is trimmed.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("dracod: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("dracod: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(in); err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, &buf, out)
}

// Check validates one system call.
func (c *Client) Check(ctx context.Context, req server.CheckRequest) (server.CheckResult, error) {
	var out server.CheckResult
	err := c.postJSON(ctx, "/v1/check", req, &out)
	return out, err
}

// CheckBatch validates a batch of calls in one round trip.
func (c *Client) CheckBatch(ctx context.Context, req server.BatchRequest) ([]server.CheckResult, error) {
	var out server.BatchResponse
	if err := c.postJSON(ctx, "/v1/check-batch", req, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// PutProfile uploads a Docker-format JSON profile document for a tenant,
// hot-swapping it if the tenant exists. The tenant keeps (or defaults) its
// check engine; use PutProfileEngine to select one.
func (c *Client) PutProfile(ctx context.Context, tenant string, profileJSON io.Reader) (server.ProfileResponse, error) {
	return c.PutProfileEngine(ctx, tenant, "", profileJSON)
}

// PutProfileEngine uploads a profile and selects the tenant's check engine
// by registry name (e.g. "draco-sw", "filter-only"). An empty engine keeps
// the server's default; a name differing from an existing tenant's engine
// rebuilds the tenant on the new mechanism.
func (c *Client) PutProfileEngine(ctx context.Context, tenant, engine string, profileJSON io.Reader) (server.ProfileResponse, error) {
	path := "/v1/tenants/" + tenant + "/profile"
	if engine != "" {
		path += "?engine=" + url.QueryEscape(engine)
	}
	var out server.ProfileResponse
	err := c.do(ctx, http.MethodPut, path, profileJSON, &out)
	return out, err
}

// Stats fetches a tenant's checker statistics.
func (c *Client) Stats(ctx context.Context, tenant string) (server.StatsResponse, error) {
	var out server.StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/tenants/"+tenant+"/stats", nil, &out)
	return out, err
}

// Tenants lists provisioned tenants.
func (c *Client) Tenants(ctx context.Context) ([]string, error) {
	var out map[string][]string
	if err := c.do(ctx, http.MethodGet, "/v1/tenants", nil, &out); err != nil {
		return nil, err
	}
	return out["tenants"], nil
}

// Metrics fetches the plain-text metrics page.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("dracod: GET /metrics: HTTP %d", resp.StatusCode)
	}
	return string(b), nil
}
