package client

// Transport is the client-side face of the session layer: one interface
// over every way of reaching a dracod — HTTP (Client via HTTPTransport),
// the TCP wire protocol (Wire), shared-memory rings (Shm), and the
// client-side aggregator (Batcher, which wraps any of them). Code written
// against Transport — the loadgen driver, replay, tests — runs unchanged
// over all four.

import (
	"bytes"
	"context"
	"strconv"
	"strings"

	"draco/internal/engine"
	"draco/internal/seccomp"
	"draco/internal/server"
)

// Transport issues checks and control operations against one dracod,
// independent of how the bytes get there. Implementations must be safe
// for concurrent use.
type Transport interface {
	// Check validates a single system call.
	Check(ctx context.Context, tenant string, sid int, args engine.Args) (engine.Decision, error)
	// CheckBatch validates calls in one request, reusing dst when it has
	// capacity.
	CheckBatch(ctx context.Context, tenant string, calls []engine.Call, dst []engine.Decision) ([]engine.Decision, error)
	// PutProfile hot-swaps the tenant's policy ("" engineName keeps the
	// current engine).
	PutProfile(ctx context.Context, tenant, engineName string, profileJSON []byte) (server.ProfileResponse, error)
	// Stats fetches the tenant's checker statistics.
	Stats(ctx context.Context, tenant string) (server.StatsResponse, error)
	// Close releases the transport's connections.
	Close() error
}

var (
	_ Transport = (*Wire)(nil)
	_ Transport = (*Shm)(nil)
	_ Transport = (*Batcher)(nil)
	_ Transport = (*HTTPTransport)(nil)
)

// HTTPTransport adapts the JSON/HTTP Client to the Transport interface.
type HTTPTransport struct{ C *Client }

// Check issues one /v1/check request.
func (t *HTTPTransport) Check(ctx context.Context, tenant string, sid int, args engine.Args) (engine.Decision, error) {
	num := sid
	res, err := t.C.Check(ctx, server.CheckRequest{Tenant: tenant, Num: &num, Args: args[:]})
	if err != nil {
		return engine.Decision{}, err
	}
	return decisionFrom(res), nil
}

// CheckBatch issues one /v1/check/batch request.
func (t *HTTPTransport) CheckBatch(ctx context.Context, tenant string, calls []engine.Call, dst []engine.Decision) ([]engine.Decision, error) {
	req := server.BatchRequest{Tenant: tenant, Calls: make([]server.BatchCall, len(calls))}
	nums := make([]int, len(calls))
	for i, c := range calls {
		nums[i] = c.SID
		req.Calls[i] = server.BatchCall{Num: &nums[i], Args: c.Args[:]}
	}
	res, err := t.C.CheckBatch(ctx, req)
	if err != nil {
		return nil, err
	}
	dst = dst[:0]
	for _, r := range res {
		dst = append(dst, decisionFrom(r))
	}
	return dst, nil
}

// PutProfile uploads a profile via the REST endpoint.
func (t *HTTPTransport) PutProfile(ctx context.Context, tenant, engineName string, profileJSON []byte) (server.ProfileResponse, error) {
	if engineName != "" {
		return t.C.PutProfileEngine(ctx, tenant, engineName, bytes.NewReader(profileJSON))
	}
	return t.C.PutProfile(ctx, tenant, bytes.NewReader(profileJSON))
}

// Stats fetches tenant statistics via the REST endpoint.
func (t *HTTPTransport) Stats(ctx context.Context, tenant string) (server.StatsResponse, error) {
	return t.C.Stats(ctx, tenant)
}

// Close is a no-op: the HTTP client owns no persistent connections beyond
// its pooled http.Transport.
func (t *HTTPTransport) Close() error { return nil }

// decisionFrom maps a JSON check result back onto the engine's decision,
// reversing resultFrom's Action.String() rendering.
func decisionFrom(r server.CheckResult) engine.Decision {
	return engine.Decision{
		Allowed:            r.Allowed,
		Cached:             r.Cached,
		FilterInstructions: r.FilterInstructions,
		Action:             parseAction(r.Action),
	}
}

// parseAction inverts seccomp.Action.String().
func parseAction(s string) seccomp.Action {
	switch s {
	case "allow":
		return seccomp.ActAllow
	case "log":
		return seccomp.ActLog
	case "trap":
		return seccomp.ActTrap
	case "kill_process":
		return seccomp.ActKillProcess
	case "kill_thread":
		return seccomp.ActKillThread
	}
	if rest, ok := strings.CutPrefix(s, "errno("); ok {
		if n, err := strconv.ParseUint(strings.TrimSuffix(rest, ")"), 10, 16); err == nil {
			return seccomp.Errno(uint16(n))
		}
	}
	if rest, ok := strings.CutPrefix(s, "action("); ok {
		if n, err := strconv.ParseUint(strings.TrimSuffix(rest, ")"), 0, 32); err == nil {
			return seccomp.Action(n)
		}
	}
	return seccomp.ActKillThread
}
