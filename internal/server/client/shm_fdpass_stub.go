//go:build !linux

package client

import "net"

// recvChunkWithFDs off Linux is a plain read: no doorbell mechanism that
// passes fds is ever negotiated on these platforms.
func recvChunkWithFDs(nc net.Conn, p []byte) (int, []int, error) {
	n, err := nc.Read(p)
	return n, nil, err
}
