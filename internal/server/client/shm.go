package client

// Shared-memory client: the co-located fast path. One connection = one
// control socket (unix stream in the server's shm directory) plus one
// mapped ring pair. Requests are encoded with the same zero-allocation
// wire payload codecs as the TCP client, but straight into submission-ring
// slot memory: a steady-state check is two ring operations and no kernel
// crossing on either side. The control plane (profile swaps, stats) stays
// on the socket; the doorbell is whatever the v2 handshake negotiated —
// a shared futex word, an eventfd pair received over SCM_RIGHTS, or the
// portable control-socket wake frame.
//
// Concurrency: the submission ring is multi-producer (CAS slot claiming),
// so calling goroutines and Batcher flushers publish concurrently under a
// shared read-lock — the write-lock belongs to teardown, which must
// exclude all producers before unmapping. The completion ring's single
// consumer is the reaper goroutine, which routes decisions back through
// the same callTable as the TCP client. For call-level aggregation that
// amortizes even the per-call ring traffic, wrap the connection in a
// Batcher (batcher.go).

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"draco/internal/engine"
	"draco/internal/server"
	"draco/internal/shm"
	"draco/internal/wire"
)

// ShmOptions configures DialShm.
type ShmOptions struct {
	// DialTimeout bounds the socket connect (0 = 5s).
	DialTimeout time.Duration
	// SlotSize / SubmitSlots / CompleteSlots request a ring geometry
	// (each 0 = server default).
	SlotSize      int
	SubmitSlots   int
	CompleteSlots int
	// Doorbell restricts what wake mechanisms this client advertises:
	// "auto" (default — everything the platform supports), "socket",
	// "futex", or "eventfd". The server picks the best mechanism both
	// sides support; the region header records the choice.
	Doorbell string
	// HugePages advertises that this client can map huge-page-backed
	// regions (the server decides; best effort on both sides).
	HugePages bool
}

// RingStats is a snapshot of one connection's transport internals, for
// benchmarks and diagnostics.
type RingStats struct {
	// Doorbell is the negotiated wake mechanism.
	Doorbell shm.DoorbellKind
	// HugePages reports whether the region asked for huge pages.
	HugePages bool
	// Parks / Wakes count the reaper's doorbell parks and wakeups.
	Parks, Wakes uint64
	// SpinBudget is the reaper's current adaptive empty-poll budget.
	SpinBudget int
}

// Shm is a shared-memory client for one dracod shm directory.
type Shm struct {
	nc  net.Conn
	w   *wire.Writer
	reg *shm.Region
	tab *callTable

	// submitMu is the producer/teardown exclusion: producers publish under
	// RLock (the ring itself is multi-producer), teardown takes Lock to
	// fence them off before unmapping.
	submitMu sync.RWMutex

	// wMu serializes control-socket writers (wire.Writer is not
	// goroutine-safe, and ring producers may send wake frames
	// concurrently with control-plane calls).
	wMu sync.Mutex

	subDoor  *shm.Doorbell // client rings it (server's submission consumer)
	compDoor *shm.Doorbell // client sleeps on it (completion consumer)
	spin     *shm.SpinController
	efds     []int // eventfd doorbell fds received over SCM_RIGHTS

	stop      chan struct{}
	reapDone  chan struct{}
	closeOnce sync.Once
	closed    atomic.Bool
}

// DialShm connects to the shm front end serving dir: it dials the control
// socket, requests a ring pair (advertising this build's doorbell
// capabilities), and maps the region file the server answers with.
func DialShm(dir string, opts ShmOptions) (*Shm, error) {
	if !shm.Supported() {
		return nil, shm.ErrUnsupported
	}
	caps, err := shm.ParseDoorbell(opts.Doorbell)
	if err != nil {
		return nil, err
	}
	// Doorbell capability only; huge pages are advertised solely on explicit
	// opt-in ("auto" must not silently change the mapping geometry).
	caps &^= shm.CapHugePages
	if opts.HugePages && shm.PlatformCaps().Has(shm.CapHugePages) {
		caps |= shm.CapHugePages
	}
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	sock := filepath.Join(dir, server.ShmSocketName)
	nc, err := net.DialTimeout("unix", sock, timeout)
	if err != nil {
		return nil, fmt.Errorf("shm: dialing %s: %w", sock, err)
	}
	s := &Shm{
		nc:       nc,
		w:        wire.NewWriter(nc),
		tab:      newCallTable(),
		stop:     make(chan struct{}),
		reapDone: make(chan struct{}),
	}
	// Handshake runs synchronously before the read loops start: one
	// TypeRingReq out, one TypeRingResp (or error) back — read raw so any
	// SCM_RIGHTS eventfds riding on the response are captured (a buffered
	// wire.Reader would discard the ancillary data).
	var req [16]byte
	binary.LittleEndian.PutUint32(req[0:], uint32(opts.SlotSize))
	binary.LittleEndian.PutUint32(req[4:], uint32(opts.SubmitSlots))
	binary.LittleEndian.PutUint32(req[8:], uint32(opts.CompleteSlots))
	binary.LittleEndian.PutUint32(req[12:], uint32(caps))
	id, call, _ := s.tab.register()
	if err := s.w.Send(wire.TypeRingReq, id, req[:]); err != nil {
		nc.Close()
		return nil, err
	}
	h, p, fds, err := readFrameWithFDs(nc)
	closeFDs := func() {
		for _, fd := range fds {
			shm.CloseFD(fd)
		}
	}
	if err != nil {
		closeFDs()
		nc.Close()
		return nil, fmt.Errorf("shm: handshake: %w", err)
	}
	s.tab.drop(id, call)
	if h.Type == wire.TypeError {
		closeFDs()
		nc.Close()
		return nil, &ServerError{Msg: string(p)}
	}
	if h.Type != wire.TypeRingResp {
		closeFDs()
		nc.Close()
		return nil, fmt.Errorf("shm: handshake answered %v, want %v", h.Type, wire.TypeRingResp)
	}
	reg, err := shm.OpenFile(string(p))
	if err != nil {
		closeFDs()
		nc.Close()
		return nil, fmt.Errorf("shm: mapping %s: %w", p, err)
	}
	kind := reg.Layout().Doorbell
	var subCfg, compCfg shm.DoorbellConfig
	if kind == shm.DoorbellEventfd {
		if len(fds) != 2 {
			closeFDs()
			reg.Close()
			nc.Close()
			return nil, fmt.Errorf("shm: eventfd doorbell negotiated but %d fds received, want 2", len(fds))
		}
		subCfg.Eventfd, compCfg.Eventfd = fds[0], fds[1]
		s.efds = fds
	} else {
		closeFDs()
	}
	subCfg.SocketRing = func() { s.sendWake() }
	s.reg = reg
	s.subDoor, err = shm.NewDoorbell(kind, reg.Submit, subCfg)
	if err == nil {
		s.compDoor, err = shm.NewDoorbell(kind, reg.Complete, compCfg)
	}
	if err != nil {
		for _, fd := range s.efds {
			shm.CloseFD(fd)
		}
		reg.Close()
		nc.Close()
		return nil, err
	}
	s.spin = shm.NewSpinController()
	go s.readSocket(wire.NewReader(nc))
	go s.reap()
	return s, nil
}

// Close tears the connection down; in-flight requests fail.
func (s *Shm) Close() error {
	s.fail(errors.New("shm: client closed"))
	return nil
}

// RingStats snapshots the transport internals (doorbell mode, park/wake
// counters, the reaper's adaptive spin budget).
func (s *Shm) RingStats() RingStats {
	return RingStats{
		Doorbell:   s.compDoor.Kind(),
		HugePages:  s.reg.Layout().HugePages,
		Parks:      s.spin.Parks(),
		Wakes:      s.spin.Wakes(),
		SpinBudget: s.spin.Budget(),
	}
}

// sendWake sends a doorbell frame on the control socket (the socket
// doorbell's Ring, and nothing else — ring producers must not share the
// writer with control-plane calls unlocked).
func (s *Shm) sendWake() {
	s.wMu.Lock()
	s.w.Send(wire.TypeWake, 0, nil)
	s.wMu.Unlock()
}

// fail poisons the table, closes the socket, and invalidates the rings,
// unparking the reaper so it can exit. The mapping and any doorbell fds
// are released only after the reaper is out and producers are excluded —
// unmapping under a live ring loop is a fault. Idempotent; safe to call
// from the reaper.
func (s *Shm) fail(err error) {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		s.tab.fail(err)
		s.nc.Close()
		close(s.stop)
		if s.reg != nil {
			s.reg.Invalidate()
			s.subDoor.Close()
			s.compDoor.Close()
			go func() {
				<-s.reapDone
				s.submitMu.Lock()
				s.reg.Close()
				s.submitMu.Unlock()
				for _, fd := range s.efds {
					shm.CloseFD(fd)
				}
			}()
		}
	})
}

// readSocket handles control-plane responses and socket doorbells.
func (s *Shm) readSocket(r *wire.Reader) {
	for {
		h, p, err := r.Next()
		if err != nil {
			s.fail(fmt.Errorf("shm: connection lost: %w", err))
			return
		}
		if h.Type == wire.TypeWake {
			s.compDoor.Notify()
			continue
		}
		s.tab.complete(h.Type, h.ID, p)
	}
}

// reap is the completion-ring consumer: decisions come back here and
// complete their calls by id. The shared ConsumeLoop owns the park
// protocol and the adaptive spin budget.
func (s *Shm) reap() {
	defer close(s.reapDone)
	loop := &shm.ConsumeLoop{
		Ring: s.reg.Complete,
		Door: s.compDoor,
		Spin: s.spin,
		Stop: s.stop,
		Handle: func(f *shm.Frame) {
			s.tab.complete(wire.Type(f.Type), f.ID, f.Payload)
		},
	}
	if err := loop.Run(); err != nil {
		s.fail(fmt.Errorf("shm: completion ring: %w", err))
	}
}

// submit claims a submission slot, fills it via enc (appending to the
// slot's own buffer — zero copy), publishes, and rings the server's
// doorbell if its consumer has parked. Multiple goroutines submit
// concurrently; the ring's CAS claim orders them.
func (s *Shm) submit(t wire.Type, id uint64, enc func([]byte) []byte) error {
	sub := s.reg.Submit
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	// The closed check shares the lock with the deferred unmap in fail, so
	// a producer never touches the mapping after it is gone.
	if sub.Closed() {
		return shm.ErrRingClosed
	}
	pos, buf := sub.Claim()
	if buf == nil {
		return shm.ErrRingClosed
	}
	err := sub.Publish(pos, uint8(t), id, enc(buf))
	if err != nil {
		// Only ErrFrameTooBig reaches here, and the MPSC claim contract is
		// hole-free: this slot must still publish. A zero-length error
		// frame stands in; the server answers it with an "unexpected
		// frame" error for an id nobody is waiting on, and the caller gets
		// the local error.
		sub.Publish(pos, uint8(wire.TypeError), id, buf[:0])
		return err
	}
	if sub.ConsumerParked() {
		s.subDoor.Ring()
	}
	return nil
}

// roundTripRing registers a request, publishes it to the submission ring,
// and waits for the completion-ring response or ctx.
func (s *Shm) roundTripRing(ctx context.Context, t wire.Type, enc func([]byte) []byte) (*wireCall, error) {
	id, call, err := s.tab.register()
	if err != nil {
		return nil, err
	}
	if err := s.submit(t, id, enc); err != nil {
		s.tab.drop(id, call)
		return nil, err
	}
	return s.tab.await(ctx, id, call)
}

// roundTripSocket runs a control-plane request over the socket.
func (s *Shm) roundTripSocket(ctx context.Context, t wire.Type, payload []byte) (*wireCall, error) {
	id, call, err := s.tab.register()
	if err != nil {
		return nil, err
	}
	s.wMu.Lock()
	err = s.w.Send(t, id, payload)
	s.wMu.Unlock()
	if err != nil {
		s.tab.drop(id, call)
		return nil, err
	}
	return s.tab.await(ctx, id, call)
}

// MaxBatchCalls reports how many calls fit in one submission-ring batch
// frame for this tenant (the Batcher's size bound).
func (s *Shm) MaxBatchCalls(tenant string) int {
	n := (s.reg.Submit.PayloadCap() - 1 - len(tenant) - 4) / wire.CallBytes
	if n > wire.MaxBatch {
		n = wire.MaxBatch
	}
	return n
}

// Check validates one system call through the rings.
func (s *Shm) Check(ctx context.Context, tenant string, sid int, args engine.Args) (engine.Decision, error) {
	if len(tenant) > wire.MaxTenant {
		return engine.Decision{}, fmt.Errorf("shm: tenant name exceeds %d bytes", wire.MaxTenant)
	}
	call, err := s.roundTripRing(ctx, wire.TypeCheckReq, func(buf []byte) []byte {
		return wire.AppendCheckReq(buf, tenant, engine.Call{SID: sid, Args: args})
	})
	if err != nil {
		return engine.Decision{}, err
	}
	defer putWireCall(call)
	if err := call.respErr(wire.TypeCheckResp); err != nil {
		return engine.Decision{}, err
	}
	return call.decision, nil
}

// CheckBatch validates a batch in one ring frame, reusing dst when it has
// capacity. The batch must fit a submission slot — at most
// MaxBatchCalls(tenant) calls.
func (s *Shm) CheckBatch(ctx context.Context, tenant string, calls []engine.Call, dst []engine.Decision) ([]engine.Decision, error) {
	if len(tenant) > wire.MaxTenant {
		return nil, fmt.Errorf("shm: tenant name exceeds %d bytes", wire.MaxTenant)
	}
	if max := s.MaxBatchCalls(tenant); len(calls) > max {
		return nil, fmt.Errorf("shm: batch of %d exceeds the slot capacity of %d calls", len(calls), max)
	}
	call, err := s.roundTripRing(ctx, wire.TypeBatchReq, func(buf []byte) []byte {
		return wire.AppendBatchReq(buf, tenant, calls)
	})
	if err != nil {
		return nil, err
	}
	defer putWireCall(call)
	if err := call.respErr(wire.TypeBatchResp); err != nil {
		return nil, err
	}
	return wire.DecodeBatchResp(call.raw, dst[:0])
}

// PutProfile uploads a profile over the control socket (JSON bodies do not
// fit fixed-size slots, and swaps are off the hot path).
func (s *Shm) PutProfile(ctx context.Context, tenant, engineName string, profileJSON []byte) (server.ProfileResponse, error) {
	var out server.ProfileResponse
	if len(tenant) > wire.MaxTenant {
		return out, fmt.Errorf("shm: tenant name exceeds %d bytes", wire.MaxTenant)
	}
	buf := wire.GetBuffer()
	buf.B = wire.AppendProfileReq(buf.B[:0], tenant, engineName, profileJSON)
	call, err := s.roundTripSocket(ctx, wire.TypeProfileReq, buf.B)
	wire.PutBuffer(buf)
	if err != nil {
		return out, err
	}
	defer putWireCall(call)
	if err := call.respErr(wire.TypeProfileResp); err != nil {
		return out, err
	}
	err = json.Unmarshal(call.raw, &out)
	return out, err
}

// Stats fetches a tenant's checker statistics over the control socket.
func (s *Shm) Stats(ctx context.Context, tenant string) (server.StatsResponse, error) {
	var out server.StatsResponse
	buf := wire.GetBuffer()
	buf.B = wire.AppendStatsReq(buf.B[:0], tenant)
	call, err := s.roundTripSocket(ctx, wire.TypeStatsReq, buf.B)
	wire.PutBuffer(buf)
	if err != nil {
		return out, err
	}
	defer putWireCall(call)
	if err := call.respErr(wire.TypeStatsResp); err != nil {
		return out, err
	}
	err = json.Unmarshal(call.raw, &out)
	return out, err
}

// readFrameWithFDs reads exactly one wire frame from nc, collecting any
// SCM_RIGHTS file descriptors that arrive with it. Used only for the
// handshake response, before the buffered reader takes over the socket.
func readFrameWithFDs(nc net.Conn) (wire.Header, []byte, []int, error) {
	var fds []int
	buf := make([]byte, 0, wire.HeaderSize+256)
	readMore := func(need int) error {
		for len(buf) < need {
			chunk := make([]byte, need-len(buf))
			n, got, err := recvChunkWithFDs(nc, chunk)
			fds = append(fds, got...)
			if n > 0 {
				buf = append(buf, chunk[:n]...)
			}
			if err != nil {
				return err
			}
			if n == 0 && len(got) == 0 {
				return errors.New("short read")
			}
		}
		return nil
	}
	if err := readMore(wire.HeaderSize); err != nil {
		return wire.Header{}, nil, fds, err
	}
	h, err := wire.ParseHeader(buf)
	if err != nil {
		return wire.Header{}, nil, fds, err
	}
	if err := readMore(wire.HeaderSize + int(h.Len)); err != nil {
		return h, nil, fds, err
	}
	return h, buf[wire.HeaderSize : wire.HeaderSize+int(h.Len)], fds, nil
}
