package client

// Shared-memory client: the co-located fast path. One connection = one
// control socket (unix stream in the server's shm directory) plus one
// mapped ring pair. Requests are encoded with the same zero-allocation
// wire payload codecs as the TCP client, but straight into submission-ring
// slot memory: a steady-state check is two ring operations and no kernel
// crossing on either side. The control plane (profile swaps, stats) and
// the doorbells stay on the socket.
//
// Concurrency: the submission ring is single-producer, so a mutex makes
// the pool of calling goroutines look like one logical producer; the
// completion ring's single consumer is the reaper goroutine, which routes
// decisions back through the same callTable as the TCP client. For
// call-level aggregation that amortizes even the per-call ring traffic,
// wrap the connection in a Batcher (batcher.go).

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"draco/internal/engine"
	"draco/internal/server"
	"draco/internal/shm"
	"draco/internal/wire"
)

// reapSpinBudget mirrors the server's parkSpinBudget: empty polls (each
// yielding the scheduler) before the reaper parks on the doorbell.
const reapSpinBudget = 256

// ShmOptions configures DialShm.
type ShmOptions struct {
	// DialTimeout bounds the socket connect (0 = 5s).
	DialTimeout time.Duration
	// SlotSize / SubmitSlots / CompleteSlots request a ring geometry
	// (each 0 = server default).
	SlotSize      int
	SubmitSlots   int
	CompleteSlots int
}

// Shm is a shared-memory client for one dracod shm directory.
type Shm struct {
	nc  net.Conn
	w   *wire.Writer
	reg *shm.Region
	tab *callTable

	// submitMu serializes producers on the submission ring.
	submitMu sync.Mutex

	wake      chan struct{}
	reapDone  chan struct{}
	closeOnce sync.Once
	closed    atomic.Bool
}

// DialShm connects to the shm front end serving dir: it dials the control
// socket, requests a ring pair, and maps the region file the server
// answers with.
func DialShm(dir string, opts ShmOptions) (*Shm, error) {
	if !shm.Supported() {
		return nil, shm.ErrUnsupported
	}
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	sock := filepath.Join(dir, server.ShmSocketName)
	nc, err := net.DialTimeout("unix", sock, timeout)
	if err != nil {
		return nil, fmt.Errorf("shm: dialing %s: %w", sock, err)
	}
	s := &Shm{
		nc:       nc,
		w:        wire.NewWriter(nc),
		tab:      newCallTable(),
		wake:     make(chan struct{}, 1),
		reapDone: make(chan struct{}),
	}
	// Handshake runs synchronously before the read loops start: one
	// TypeRingReq out, one TypeRingResp (or error) back.
	var req [12]byte
	binary.LittleEndian.PutUint32(req[0:], uint32(opts.SlotSize))
	binary.LittleEndian.PutUint32(req[4:], uint32(opts.SubmitSlots))
	binary.LittleEndian.PutUint32(req[8:], uint32(opts.CompleteSlots))
	id, call, _ := s.tab.register()
	if err := s.w.Send(wire.TypeRingReq, id, req[:]); err != nil {
		nc.Close()
		return nil, err
	}
	r := wire.NewReader(nc)
	h, p, err := r.Next()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("shm: handshake: %w", err)
	}
	s.tab.drop(id, call)
	if h.Type == wire.TypeError {
		nc.Close()
		return nil, &ServerError{Msg: string(p)}
	}
	if h.Type != wire.TypeRingResp {
		nc.Close()
		return nil, fmt.Errorf("shm: handshake answered %v, want %v", h.Type, wire.TypeRingResp)
	}
	reg, err := shm.OpenFile(string(p))
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("shm: mapping %s: %w", p, err)
	}
	s.reg = reg
	go s.readSocket(r)
	go s.reap()
	return s, nil
}

// Close tears the connection down; in-flight requests fail.
func (s *Shm) Close() error {
	s.fail(errors.New("shm: client closed"))
	return nil
}

// fail poisons the table, closes the socket, and invalidates the rings,
// unparking the reaper so it can exit. The mapping itself is released only
// after the reaper is out and producers are excluded — unmapping under a
// live ring loop is a fault. Idempotent; safe to call from the reaper.
func (s *Shm) fail(err error) {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		s.tab.fail(err)
		s.nc.Close()
		select {
		case s.wake <- struct{}{}:
		default:
		}
		if s.reg != nil {
			s.reg.Invalidate()
			go func() {
				<-s.reapDone
				s.submitMu.Lock()
				s.reg.Close()
				s.submitMu.Unlock()
			}()
		}
	})
}

// readSocket handles control-plane responses and doorbells.
func (s *Shm) readSocket(r *wire.Reader) {
	for {
		h, p, err := r.Next()
		if err != nil {
			s.fail(fmt.Errorf("shm: connection lost: %w", err))
			return
		}
		if h.Type == wire.TypeWake {
			select {
			case s.wake <- struct{}{}:
			default:
			}
			continue
		}
		s.tab.complete(h.Type, h.ID, p)
	}
}

// reap is the completion-ring consumer: decisions come back here and
// complete their calls by id. The park protocol mirrors the server's.
func (s *Shm) reap() {
	defer close(s.reapDone)
	comp := s.reg.Complete
	var f shm.Frame
	spins := 0
	for {
		ok, err := comp.Consume(&f)
		if err != nil {
			s.fail(fmt.Errorf("shm: completion ring: %w", err))
			return
		}
		if !ok {
			if s.closed.Load() || comp.Closed() {
				return
			}
			spins++
			if spins < reapSpinBudget {
				runtime.Gosched()
				continue
			}
			comp.SetParked(true)
			if !comp.Empty() {
				comp.SetParked(false)
				spins = 0
				continue
			}
			<-s.wake
			comp.SetParked(false)
			if s.closed.Load() {
				return
			}
			spins = 0
			continue
		}
		spins = 0
		s.tab.complete(wire.Type(f.Type), f.ID, f.Payload)
		comp.Release()
	}
}

// submit claims a submission slot, fills it via enc (appending to the
// slot's own buffer — zero copy), publishes, and rings the server's
// doorbell if its consumer has parked.
func (s *Shm) submit(t wire.Type, id uint64, enc func([]byte) []byte) error {
	sub := s.reg.Submit
	s.submitMu.Lock()
	// The closed check shares submitMu with the deferred unmap in fail, so
	// a producer never touches the mapping after it is gone.
	if sub.Closed() {
		s.submitMu.Unlock()
		return shm.ErrRingClosed
	}
	buf := sub.Claim()
	if buf == nil {
		s.submitMu.Unlock()
		return shm.ErrRingClosed
	}
	err := sub.Publish(uint8(t), id, enc(buf))
	parked := err == nil && sub.ConsumerParked()
	s.submitMu.Unlock()
	if err != nil {
		return err
	}
	if parked {
		return s.w.Send(wire.TypeWake, 0, nil)
	}
	return nil
}

// roundTripRing registers a request, publishes it to the submission ring,
// and waits for the completion-ring response or ctx.
func (s *Shm) roundTripRing(ctx context.Context, t wire.Type, enc func([]byte) []byte) (*wireCall, error) {
	id, call, err := s.tab.register()
	if err != nil {
		return nil, err
	}
	if err := s.submit(t, id, enc); err != nil {
		s.tab.drop(id, call)
		return nil, err
	}
	return s.tab.await(ctx, id, call)
}

// roundTripSocket runs a control-plane request over the socket.
func (s *Shm) roundTripSocket(ctx context.Context, t wire.Type, payload []byte) (*wireCall, error) {
	id, call, err := s.tab.register()
	if err != nil {
		return nil, err
	}
	if err := s.w.Send(t, id, payload); err != nil {
		s.tab.drop(id, call)
		return nil, err
	}
	return s.tab.await(ctx, id, call)
}

// MaxBatchCalls reports how many calls fit in one submission-ring batch
// frame for this tenant (the Batcher's size bound).
func (s *Shm) MaxBatchCalls(tenant string) int {
	n := (s.reg.Submit.PayloadCap() - 1 - len(tenant) - 4) / wire.CallBytes
	if n > wire.MaxBatch {
		n = wire.MaxBatch
	}
	return n
}

// Check validates one system call through the rings.
func (s *Shm) Check(ctx context.Context, tenant string, sid int, args engine.Args) (engine.Decision, error) {
	if len(tenant) > wire.MaxTenant {
		return engine.Decision{}, fmt.Errorf("shm: tenant name exceeds %d bytes", wire.MaxTenant)
	}
	call, err := s.roundTripRing(ctx, wire.TypeCheckReq, func(buf []byte) []byte {
		return wire.AppendCheckReq(buf, tenant, engine.Call{SID: sid, Args: args})
	})
	if err != nil {
		return engine.Decision{}, err
	}
	defer putWireCall(call)
	if err := call.respErr(wire.TypeCheckResp); err != nil {
		return engine.Decision{}, err
	}
	return call.decision, nil
}

// CheckBatch validates a batch in one ring frame, reusing dst when it has
// capacity. The batch must fit a submission slot — at most
// MaxBatchCalls(tenant) calls.
func (s *Shm) CheckBatch(ctx context.Context, tenant string, calls []engine.Call, dst []engine.Decision) ([]engine.Decision, error) {
	if len(tenant) > wire.MaxTenant {
		return nil, fmt.Errorf("shm: tenant name exceeds %d bytes", wire.MaxTenant)
	}
	if max := s.MaxBatchCalls(tenant); len(calls) > max {
		return nil, fmt.Errorf("shm: batch of %d exceeds the slot capacity of %d calls", len(calls), max)
	}
	call, err := s.roundTripRing(ctx, wire.TypeBatchReq, func(buf []byte) []byte {
		return wire.AppendBatchReq(buf, tenant, calls)
	})
	if err != nil {
		return nil, err
	}
	defer putWireCall(call)
	if err := call.respErr(wire.TypeBatchResp); err != nil {
		return nil, err
	}
	return wire.DecodeBatchResp(call.raw, dst[:0])
}

// PutProfile uploads a profile over the control socket (JSON bodies do not
// fit fixed-size slots, and swaps are off the hot path).
func (s *Shm) PutProfile(ctx context.Context, tenant, engineName string, profileJSON []byte) (server.ProfileResponse, error) {
	var out server.ProfileResponse
	if len(tenant) > wire.MaxTenant {
		return out, fmt.Errorf("shm: tenant name exceeds %d bytes", wire.MaxTenant)
	}
	buf := wire.GetBuffer()
	buf.B = wire.AppendProfileReq(buf.B[:0], tenant, engineName, profileJSON)
	call, err := s.roundTripSocket(ctx, wire.TypeProfileReq, buf.B)
	wire.PutBuffer(buf)
	if err != nil {
		return out, err
	}
	defer putWireCall(call)
	if err := call.respErr(wire.TypeProfileResp); err != nil {
		return out, err
	}
	err = json.Unmarshal(call.raw, &out)
	return out, err
}

// Stats fetches a tenant's checker statistics over the control socket.
func (s *Shm) Stats(ctx context.Context, tenant string) (server.StatsResponse, error) {
	var out server.StatsResponse
	buf := wire.GetBuffer()
	buf.B = wire.AppendStatsReq(buf.B[:0], tenant)
	call, err := s.roundTripSocket(ctx, wire.TypeStatsReq, buf.B)
	wire.PutBuffer(buf)
	if err != nil {
		return out, err
	}
	defer putWireCall(call)
	if err := call.respErr(wire.TypeStatsResp); err != nil {
		return out, err
	}
	err = json.Unmarshal(call.raw, &out)
	return out, err
}
