package client

// The in-flight call table: the id-matched completion machinery shared by
// every pipelined transport (the TCP wire client and the shared-memory
// client). A transport registers a call to get its id, sends the request
// however it likes — wire frame or ring slot — and awaits completion; a
// background receiver (read loop or ring reaper) completes calls by id.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"draco/internal/engine"
	"draco/internal/wire"
)

// wireCall is one in-flight request's completion slot. Pooled: the raw
// buffer's capacity survives reuse.
type wireCall struct {
	done     chan struct{}
	typ      wire.Type
	decision engine.Decision
	raw      []byte
	err      error
}

var wireCallPool = sync.Pool{New: func() any { return &wireCall{done: make(chan struct{}, 1)} }}

func getWireCall() *wireCall {
	c := wireCallPool.Get().(*wireCall)
	c.typ, c.decision, c.err = 0, engine.Decision{}, nil
	c.raw = c.raw[:0]
	return c
}

func putWireCall(c *wireCall) { wireCallPool.Put(c) }

// respErr folds error frames and type mismatches into one check.
func (c *wireCall) respErr(want wire.Type) error {
	if c.err != nil {
		return c.err
	}
	if c.typ == wire.TypeError {
		return &ServerError{Msg: string(c.raw)}
	}
	if c.typ != want {
		return fmt.Errorf("wire: server answered %v, want %v", c.typ, want)
	}
	return nil
}

// callTable tracks one connection's in-flight requests by id.
type callTable struct {
	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]*wireCall
	err     error
}

func newCallTable() *callTable {
	return &callTable{pending: make(map[uint64]*wireCall)}
}

// alive reports whether the table's connection is still usable.
func (t *callTable) alive() bool {
	t.mu.Lock()
	ok := t.err == nil
	t.mu.Unlock()
	return ok
}

// register allocates an id and a pooled completion slot for one request.
// On a poisoned table it returns the terminal error instead.
func (t *callTable) register() (uint64, *wireCall, error) {
	id := t.nextID.Add(1)
	call := getWireCall()
	t.mu.Lock()
	if t.err != nil {
		err := t.err
		t.mu.Unlock()
		putWireCall(call)
		return 0, nil, err
	}
	t.pending[id] = call
	t.mu.Unlock()
	return id, call, nil
}

// drop deregisters a call whose request never made it out (send failure)
// and pools its slot.
func (t *callTable) drop(id uint64, call *wireCall) {
	t.mu.Lock()
	delete(t.pending, id)
	t.mu.Unlock()
	putWireCall(call)
}

// await blocks until the call completes or ctx fires. The returned
// wireCall (nil on ctx error) must go back via putWireCall.
func (t *callTable) await(ctx context.Context, id uint64, call *wireCall) (*wireCall, error) {
	select {
	case <-call.done:
		return call, nil
	case <-ctx.Done():
		t.mu.Lock()
		_, mine := t.pending[id]
		if mine {
			delete(t.pending, id)
		}
		t.mu.Unlock()
		if !mine {
			// The receiver claimed the call between ctx firing and the
			// deregister: its completion signal is coming — consume it so
			// the slot can be pooled.
			<-call.done
			return call, nil
		}
		putWireCall(call)
		return nil, ctx.Err()
	}
}

// complete routes one response to its waiting caller. Payloads other than
// single-check decisions are copied out of p (receivers recycle their
// buffers). Unmatched ids are dropped: the caller cancelled.
func (t *callTable) complete(typ wire.Type, id uint64, p []byte) {
	t.mu.Lock()
	call := t.pending[id]
	delete(t.pending, id)
	t.mu.Unlock()
	if call == nil {
		return
	}
	call.typ = typ
	switch typ {
	case wire.TypeCheckResp:
		call.decision, call.err = wire.DecodeCheckResp(p)
	default:
		call.raw = append(call.raw[:0], p...)
	}
	call.done <- struct{}{}
}

// fail poisons the table and completes every in-flight request with the
// terminal error.
func (t *callTable) fail(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	calls := make([]*wireCall, 0, len(t.pending))
	for id, call := range t.pending {
		call.err = t.err
		calls = append(calls, call)
		delete(t.pending, id)
	}
	t.mu.Unlock()
	for _, call := range calls {
		call.done <- struct{}{}
	}
}
