package bpf

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func mustVM(t *testing.T, p Program) *VM {
	t.Helper()
	vm, err := NewVM(p)
	if err != nil {
		t.Fatalf("NewVM: %v", err)
	}
	return vm
}

func run(t *testing.T, p Program, data []byte) Result {
	t.Helper()
	vm := mustVM(t, p)
	r, err := vm.Run(data)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestRetConstant(t *testing.T) {
	p := Program{Stmt(ClassRET|SrcK, 42)}
	r := run(t, p, nil)
	if r.Value != 42 {
		t.Fatalf("ret = %d, want 42", r.Value)
	}
	if r.Executed != 1 {
		t.Fatalf("executed = %d, want 1", r.Executed)
	}
}

func TestRetAccumulator(t *testing.T) {
	p := Program{
		Stmt(ClassLD|ModeIMM, 7),
		Stmt(ClassRET|0x10, 0), // ret a
	}
	if r := run(t, p, nil); r.Value != 7 {
		t.Fatalf("ret a = %d, want 7", r.Value)
	}
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		op   uint16
		init uint32
		k    uint32
		want uint32
	}{
		{ALUAdd, 3, 4, 7},
		{ALUSub, 10, 4, 6},
		{ALUMul, 3, 5, 15},
		{ALUDiv, 20, 5, 4},
		{ALUMod, 22, 5, 2},
		{ALUOr, 0b0101, 0b0011, 0b0111},
		{ALUAnd, 0b0101, 0b0011, 0b0001},
		{ALUXor, 0b0101, 0b0011, 0b0110},
		{ALULsh, 1, 4, 16},
		{ALURsh, 16, 4, 1},
	}
	for _, c := range cases {
		p := Program{
			Stmt(ClassLD|ModeIMM, c.init),
			Stmt(ClassALU|c.op|SrcK, c.k),
			Stmt(ClassRET|0x10, 0),
		}
		if r := run(t, p, nil); r.Value != c.want {
			t.Errorf("alu %#x: got %d, want %d", c.op, r.Value, c.want)
		}
	}
}

func TestALUNeg(t *testing.T) {
	p := Program{
		Stmt(ClassLD|ModeIMM, 1),
		Stmt(ClassALU|ALUNeg, 0),
		Stmt(ClassRET|0x10, 0),
	}
	if r := run(t, p, nil); r.Value != 0xFFFFFFFF {
		t.Fatalf("neg 1 = %#x, want 0xFFFFFFFF", r.Value)
	}
}

func TestALUWithX(t *testing.T) {
	p := Program{
		Stmt(ClassLDX|ModeIMM, 5),
		Stmt(ClassLD|ModeIMM, 8),
		Stmt(ClassALU|ALUAdd|SrcX, 0),
		Stmt(ClassRET|0x10, 0),
	}
	if r := run(t, p, nil); r.Value != 13 {
		t.Fatalf("add x = %d, want 13", r.Value)
	}
}

func TestRuntimeDivByZeroX(t *testing.T) {
	p := Program{
		Stmt(ClassLDX|ModeIMM, 0),
		Stmt(ClassLD|ModeIMM, 8),
		Stmt(ClassALU|ALUDiv|SrcX, 0),
		Stmt(ClassRET|0x10, 0),
	}
	vm := mustVM(t, p)
	if _, err := vm.Run(nil); !errors.Is(err, ErrDivByZero) {
		t.Fatalf("err = %v, want ErrDivByZero", err)
	}
}

func TestJumps(t *testing.T) {
	// if A == 5 ret 1 else ret 0
	p := Program{
		Stmt(ClassLD|ModeABS|SizeW, 0),
		Jump(ClassJMP|JmpJEQ|SrcK, 5, 0, 1),
		Stmt(ClassRET, 1),
		Stmt(ClassRET, 0),
	}
	data5 := []byte{5, 0, 0, 0}
	data6 := []byte{6, 0, 0, 0}
	if r := run(t, p, data5); r.Value != 1 {
		t.Fatalf("jeq taken: ret %d, want 1", r.Value)
	}
	if r := run(t, p, data6); r.Value != 0 {
		t.Fatalf("jeq not taken: ret %d, want 0", r.Value)
	}
}

func TestJumpKinds(t *testing.T) {
	mk := func(op uint16, k uint32) Program {
		return Program{
			Stmt(ClassLD|ModeIMM, 10),
			Jump(ClassJMP|op|SrcK, k, 0, 1),
			Stmt(ClassRET, 1),
			Stmt(ClassRET, 0),
		}
	}
	cases := []struct {
		op   uint16
		k    uint32
		want uint32
	}{
		{JmpJGT, 9, 1},
		{JmpJGT, 10, 0},
		{JmpJGE, 10, 1},
		{JmpJGE, 11, 0},
		{JmpJSET, 2, 1},
		{JmpJSET, 1, 0},
	}
	for _, c := range cases {
		if r := run(t, mk(c.op, c.k), nil); r.Value != c.want {
			t.Errorf("jump %#x k=%d: got %d, want %d", c.op, c.k, r.Value, c.want)
		}
	}
}

func TestJumpAlways(t *testing.T) {
	p := Program{
		Jump(ClassJMP|JmpJA, 1, 0, 0),
		Stmt(ClassRET, 99), // skipped
		Stmt(ClassRET, 7),
	}
	if r := run(t, p, nil); r.Value != 7 {
		t.Fatalf("ja: ret %d, want 7", r.Value)
	}
}

func TestScratchMemory(t *testing.T) {
	p := Program{
		Stmt(ClassLD|ModeIMM, 123),
		Stmt(ClassST, 3),
		Stmt(ClassLD|ModeIMM, 0),
		Stmt(ClassLD|ModeMEM, 3),
		Stmt(ClassRET|0x10, 0),
	}
	if r := run(t, p, nil); r.Value != 123 {
		t.Fatalf("scratch roundtrip = %d, want 123", r.Value)
	}
}

func TestTAXTXA(t *testing.T) {
	p := Program{
		Stmt(ClassLD|ModeIMM, 55),
		Stmt(ClassMISC|MiscTAX, 0),
		Stmt(ClassLD|ModeIMM, 0),
		Stmt(ClassMISC|MiscTXA, 0),
		Stmt(ClassRET|0x10, 0),
	}
	if r := run(t, p, nil); r.Value != 55 {
		t.Fatalf("tax/txa = %d, want 55", r.Value)
	}
}

func TestLoadSizes(t *testing.T) {
	data := []byte{0x11, 0x22, 0x33, 0x44}
	// Byte load.
	p := Program{Stmt(ClassLD|ModeABS|SizeB, 2), Stmt(ClassRET|0x10, 0)}
	if r := run(t, p, data); r.Value != 0x33 {
		t.Fatalf("ldb = %#x, want 0x33", r.Value)
	}
	// Halfword load (big-endian, classic network order).
	p = Program{Stmt(ClassLD|ModeABS|SizeH, 0), Stmt(ClassRET|0x10, 0)}
	if r := run(t, p, data); r.Value != 0x1122 {
		t.Fatalf("ldh = %#x, want 0x1122", r.Value)
	}
	// Word load (little-endian, seccomp_data order).
	p = Program{Stmt(ClassLD|ModeABS|SizeW, 0), Stmt(ClassRET|0x10, 0)}
	if r := run(t, p, data); r.Value != 0x44332211 {
		t.Fatalf("ldw = %#x, want 0x44332211", r.Value)
	}
}

func TestIndirectLoad(t *testing.T) {
	data := []byte{0, 0, 0, 0, 0xAA}
	p := Program{
		Stmt(ClassLDX|ModeIMM, 4),
		Stmt(ClassLD|ModeIND|SizeB, 0),
		Stmt(ClassRET|0x10, 0),
	}
	if r := run(t, p, data); r.Value != 0xAA {
		t.Fatalf("ind ldb = %#x, want 0xAA", r.Value)
	}
}

func TestLoadLen(t *testing.T) {
	p := Program{Stmt(ClassLD|ModeLEN, 0), Stmt(ClassRET|0x10, 0)}
	if r := run(t, p, make([]byte, 64)); r.Value != 64 {
		t.Fatalf("ld len = %d, want 64", r.Value)
	}
}

func TestOutOfBoundsLoad(t *testing.T) {
	p := Program{Stmt(ClassLD|ModeABS|SizeW, 62), Stmt(ClassRET|0x10, 0)}
	vm := mustVM(t, p)
	if _, err := vm.Run(make([]byte, 64)); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("err = %v, want ErrOutOfBounds", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		p    Program
		want error
	}{
		{"empty", Program{}, ErrEmpty},
		{"no ret", Program{Stmt(ClassLD|ModeIMM, 0)}, ErrNoReturn},
		{"jump off end", Program{
			Jump(ClassJMP|JmpJEQ, 0, 5, 0),
			Stmt(ClassRET, 0),
		}, ErrBadJump},
		{"ja off end", Program{
			Jump(ClassJMP|JmpJA, 10, 0, 0),
			Stmt(ClassRET, 0),
		}, ErrBadJump},
		{"bad scratch", Program{
			Stmt(ClassST, 16),
			Stmt(ClassRET, 0),
		}, ErrBadScratch},
		{"const div zero", Program{
			Stmt(ClassALU|ALUDiv|SrcK, 0),
			Stmt(ClassRET, 0),
		}, ErrDivByZeroK},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestValidateTooLong(t *testing.T) {
	p := make(Program, MaxInsns+1)
	for i := range p {
		p[i] = Stmt(ClassRET, 0)
	}
	if err := p.Validate(); !errors.Is(err, ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}

func TestExecutedCountsOnlyReached(t *testing.T) {
	p := Program{
		Stmt(ClassLD|ModeIMM, 1),
		Jump(ClassJMP|JmpJEQ|SrcK, 1, 1, 0), // taken: skip next
		Stmt(ClassALU|ALUAdd|SrcK, 100),     // skipped
		Stmt(ClassRET|0x10, 0),
	}
	r := run(t, p, nil)
	if r.Executed != 3 {
		t.Fatalf("executed = %d, want 3", r.Executed)
	}
	if r.Value != 1 {
		t.Fatalf("value = %d, want 1", r.Value)
	}
}

func TestDisassembleSmoke(t *testing.T) {
	p := Program{
		Stmt(ClassLD|ModeABS|SizeW, 0),
		Jump(ClassJMP|JmpJEQ|SrcK, 5, 0, 1),
		Stmt(ClassRET, 0x7fff0000),
		Stmt(ClassRET, 0),
	}
	out := Disassemble(p)
	for _, want := range []string{"ldA w [0]", "jeq", "ret"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestQuickValidatedProgramsTerminate(t *testing.T) {
	// Property: any program that passes Validate terminates (classic BPF
	// jumps are forward-only) and executes at most len(p) instructions.
	f := func(seed int64) bool {
		p := randomValidProgram(seed)
		if err := p.Validate(); err != nil {
			return true // generator produced something invalid; skip
		}
		vm, err := NewVM(p)
		if err != nil {
			return true
		}
		r, err := vm.Run(make([]byte, 64))
		if err != nil {
			// Runtime faults (bounds, div-zero) are fine; they terminate.
			return r.Executed <= len(p)
		}
		return r.Executed <= len(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// randomValidProgram builds a structurally valid forward-jumping program.
func randomValidProgram(seed int64) Program {
	rng := seed
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := int((rng >> 33) % int64(n))
		if v < 0 {
			v += n
		}
		return v
	}
	n := 4 + next(40)
	p := make(Program, 0, n+1)
	for i := 0; i < n; i++ {
		remain := n - i // instructions after this one, including final RET
		switch next(5) {
		case 0:
			p = append(p, Stmt(ClassLD|ModeIMM, uint32(next(1000))))
		case 1:
			p = append(p, Stmt(ClassLD|ModeABS|SizeW, uint32(next(16)*4)))
		case 2:
			p = append(p, Stmt(ClassALU|ALUAdd|SrcK, uint32(next(100))))
		case 3:
			jt := uint8(next(min(remain, 255)))
			jf := uint8(next(min(remain, 255)))
			p = append(p, Jump(ClassJMP|JmpJEQ|SrcK, uint32(next(10)), jt, jf))
		case 4:
			p = append(p, Stmt(ClassST, uint32(next(ScratchSlots))))
		}
	}
	p = append(p, Stmt(ClassRET, 0))
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkInterpreterTightLoop(b *testing.B) {
	// A ~100-instruction linear compare chain, representative of a
	// docker-default-sized fragment.
	p := Program{Stmt(ClassLD|ModeABS|SizeW, 0)}
	for i := 0; i < 100; i++ {
		// A match jumps to the trailing RET at index 101; the jump sits at
		// index i+1, so the offset is 101 - (i+1) - 1.
		p = append(p, Jump(ClassJMP|JmpJEQ|SrcK, uint32(i+1000), uint8(99-i), 0))
	}
	p = append(p, Stmt(ClassRET, 0))
	vm, err := NewVM(p)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run(data); err != nil {
			b.Fatal(err)
		}
	}
}
