package bpf

import (
	"math/rand"
	"testing"
)

// TestValidateNeverPanics feeds arbitrary instruction encodings through the
// validator: it must reject or accept, never crash (the kernel-facing
// robustness property of bpf_check_classic).
func TestValidateNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(32)
		p := make(Program, n)
		for i := range p {
			p[i] = Instruction{
				Op: uint16(rng.Intn(1 << 16)),
				Jt: uint8(rng.Intn(256)),
				Jf: uint8(rng.Intn(256)),
				K:  rng.Uint32(),
			}
		}
		_ = p.Validate() // must not panic
	}
}

// TestValidatedNeverCrashesVM: anything the validator accepts must run to a
// result or a well-typed runtime error on any input — no panics, no
// out-of-range memory access, guaranteed termination.
func TestValidatedNeverCrashesVM(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	accepted := 0
	for trial := 0; trial < 20000; trial++ {
		n := 1 + rng.Intn(24)
		p := make(Program, n)
		for i := range p {
			// Bias toward plausible opcodes so some programs validate.
			classes := []uint16{ClassLD, ClassLDX, ClassST, ClassSTX, ClassALU, ClassJMP, ClassRET, ClassMISC}
			cls := classes[rng.Intn(len(classes))]
			var op uint16
			switch cls {
			case ClassLD, ClassLDX:
				modes := []uint16{ModeIMM, ModeABS, ModeMEM, ModeLEN}
				sizes := []uint16{SizeW, SizeH, SizeB}
				op = cls | modes[rng.Intn(len(modes))] | sizes[rng.Intn(len(sizes))]
			case ClassALU:
				ops := []uint16{ALUAdd, ALUSub, ALUMul, ALUDiv, ALUOr, ALUAnd, ALULsh, ALURsh, ALUXor}
				op = cls | ops[rng.Intn(len(ops))] | uint16(rng.Intn(2))*SrcX
			case ClassJMP:
				ops := []uint16{JmpJA, JmpJEQ, JmpJGT, JmpJGE, JmpJSET}
				op = cls | ops[rng.Intn(len(ops))] | uint16(rng.Intn(2))*SrcX
			case ClassMISC:
				op = cls | []uint16{MiscTAX, MiscTXA}[rng.Intn(2)]
			default:
				op = cls
			}
			p[i] = Instruction{
				Op: op,
				Jt: uint8(rng.Intn(4)),
				Jf: uint8(rng.Intn(4)),
				K:  uint32(rng.Intn(128)),
			}
		}
		if p.Validate() != nil {
			continue
		}
		accepted++
		vm, err := NewVM(p)
		if err != nil {
			t.Fatalf("validated program rejected by VM: %v", err)
		}
		for _, size := range []int{0, 1, 64} {
			data := make([]byte, size)
			rng.Read(data)
			r, err := vm.Run(data)
			if err == nil && r.Executed > len(p) {
				t.Fatalf("executed %d > program length %d", r.Executed, len(p))
			}
		}
	}
	if accepted < 100 {
		t.Fatalf("only %d/20000 random programs validated; generator too weak for this test to mean anything", accepted)
	}
}
