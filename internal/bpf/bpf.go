// Package bpf implements the classic Berkeley Packet Filter virtual machine
// that Linux Seccomp filters execute on (paper §II-B). Seccomp profiles are
// compiled to cBPF programs; the kernel runs the program against a
// seccomp_data buffer on every system call. The per-syscall checking
// overhead the paper measures is the time spent executing these programs, so
// the interpreter here counts executed instructions to drive the cost model.
//
// The implementation covers the full classic BPF instruction set (loads,
// stores, ALU, conditional jumps, returns, and the A<->X transfers), with
// the sixteen-word scratch memory and the two registers A and X. Packet
// loads read from the caller-supplied data buffer, which for Seccomp is the
// 64-byte seccomp_data structure.
package bpf

import (
	"errors"
	"fmt"
)

// MaxInsns is the stock kernel's BPF_MAXINSNS limit on filter length.
const MaxInsns = 4096

// ExtendedMaxInsns is the raised filter-length limit this reproduction
// validates against. The paper's syscall-complete profiles allow up to
// 2458 distinct argument values (Figure 15b); at the several BPF
// instructions each exact-value compare costs, such filters exceed the
// stock 4096-instruction cap, so the authors' instrumented kernel must
// raise it — we do the same.
const ExtendedMaxInsns = 64 * 1024

// ScratchSlots is the size of the BPF scratch memory M[].
const ScratchSlots = 16

// Instruction classes (low three bits of the opcode).
const (
	ClassLD   = 0x00 // load into A
	ClassLDX  = 0x01 // load into X
	ClassST   = 0x02 // store A to scratch
	ClassSTX  = 0x03 // store X to scratch
	ClassALU  = 0x04 // arithmetic on A
	ClassJMP  = 0x05 // jumps
	ClassRET  = 0x06 // return
	ClassMISC = 0x07 // A<->X
)

// Size field for loads.
const (
	SizeW = 0x00 // 32-bit word
	SizeH = 0x08 // 16-bit halfword
	SizeB = 0x10 // byte
)

// Mode field for loads.
const (
	ModeIMM = 0x00 // immediate
	ModeABS = 0x20 // absolute offset into data
	ModeIND = 0x40 // X-relative offset into data
	ModeMEM = 0x60 // scratch memory
	ModeLEN = 0x80 // data length
	ModeMSH = 0xa0 // IP-header-length hack (LDX only)
)

// ALU / JMP operations.
const (
	ALUAdd = 0x00
	ALUSub = 0x10
	ALUMul = 0x20
	ALUDiv = 0x30
	ALUOr  = 0x40
	ALUAnd = 0x50
	ALULsh = 0x60
	ALURsh = 0x70
	ALUNeg = 0x80
	ALUMod = 0x90
	ALUXor = 0xa0

	JmpJA   = 0x00
	JmpJEQ  = 0x10
	JmpJGT  = 0x20
	JmpJGE  = 0x30
	JmpJSET = 0x40
)

// Source field: K immediate or X register.
const (
	SrcK = 0x00
	SrcX = 0x08
)

// MISC subops.
const (
	MiscTAX = 0x00 // X = A
	MiscTXA = 0x80 // A = X
)

// Instruction is one classic-BPF instruction, mirroring struct sock_filter.
type Instruction struct {
	Op uint16
	Jt uint8
	Jf uint8
	K  uint32
}

// Stmt builds a non-jump instruction.
func Stmt(op uint16, k uint32) Instruction {
	return Instruction{Op: op, K: k}
}

// Jump builds a conditional jump instruction.
func Jump(op uint16, k uint32, jt, jf uint8) Instruction {
	return Instruction{Op: op, Jt: jt, Jf: jf, K: k}
}

// Program is a validated-or-not sequence of instructions.
type Program []Instruction

// Validation errors.
var (
	ErrEmpty       = errors.New("bpf: empty program")
	ErrTooLong     = fmt.Errorf("bpf: program exceeds %d instructions", MaxInsns)
	ErrNoReturn    = errors.New("bpf: program does not end in RET")
	ErrBadJump     = errors.New("bpf: jump out of range")
	ErrBadOpcode   = errors.New("bpf: unknown opcode")
	ErrBadScratch  = errors.New("bpf: scratch index out of range")
	ErrDivByZeroK  = errors.New("bpf: constant division by zero")
	ErrBadLoadSize = errors.New("bpf: bad load size")
)

// Validate performs the same structural checks the kernel's bpf_check_classic
// applies: length limits, in-range forward jumps, known opcodes, scratch
// bounds, no constant division by zero, and a final RET. The stock kernel
// length limit applies; use ValidateMax for the extended limit.
func (p Program) Validate() error {
	return p.ValidateMax(MaxInsns)
}

// ValidateMax validates with an explicit instruction-count limit.
func (p Program) ValidateMax(maxInsns int) error {
	if len(p) == 0 {
		return ErrEmpty
	}
	if len(p) > maxInsns {
		return ErrTooLong
	}
	for i, ins := range p {
		cls := ins.Op & 0x07
		switch cls {
		case ClassLD, ClassLDX:
			mode := ins.Op & 0xe0
			size := ins.Op & 0x18
			switch mode {
			case ModeIMM, ModeLEN:
				// any size bits tolerated by kernel; accept
			case ModeABS, ModeIND:
				if size != SizeW && size != SizeH && size != SizeB {
					return fmt.Errorf("%w at %d", ErrBadLoadSize, i)
				}
			case ModeMEM:
				if ins.K >= ScratchSlots {
					return fmt.Errorf("%w at %d", ErrBadScratch, i)
				}
			case ModeMSH:
				if cls != ClassLDX {
					return fmt.Errorf("%w at %d: MSH is LDX-only", ErrBadOpcode, i)
				}
			default:
				return fmt.Errorf("%w at %d: %#x", ErrBadOpcode, i, ins.Op)
			}
		case ClassST, ClassSTX:
			if ins.K >= ScratchSlots {
				return fmt.Errorf("%w at %d", ErrBadScratch, i)
			}
		case ClassALU:
			op := ins.Op & 0xf0
			switch op {
			case ALUAdd, ALUSub, ALUMul, ALUOr, ALUAnd, ALULsh, ALURsh, ALUXor, ALUNeg:
			case ALUDiv, ALUMod:
				if ins.Op&SrcX == 0 && ins.K == 0 {
					return fmt.Errorf("%w at %d", ErrDivByZeroK, i)
				}
			default:
				return fmt.Errorf("%w at %d: %#x", ErrBadOpcode, i, ins.Op)
			}
		case ClassJMP:
			op := ins.Op & 0xf0
			switch op {
			case JmpJA:
				if uint32(i)+ins.K+1 >= uint32(len(p)) {
					return fmt.Errorf("%w at %d", ErrBadJump, i)
				}
			case JmpJEQ, JmpJGT, JmpJGE, JmpJSET:
				if i+int(ins.Jt)+1 >= len(p) || i+int(ins.Jf)+1 >= len(p) {
					return fmt.Errorf("%w at %d", ErrBadJump, i)
				}
			default:
				return fmt.Errorf("%w at %d: %#x", ErrBadOpcode, i, ins.Op)
			}
		case ClassRET:
		case ClassMISC:
			sub := ins.Op & 0xf8
			if sub != MiscTAX && sub != MiscTXA {
				return fmt.Errorf("%w at %d: %#x", ErrBadOpcode, i, ins.Op)
			}
		default:
			return fmt.Errorf("%w at %d: %#x", ErrBadOpcode, i, ins.Op)
		}
	}
	last := p[len(p)-1]
	if last.Op&0x07 != ClassRET {
		return ErrNoReturn
	}
	return nil
}
