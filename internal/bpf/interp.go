package bpf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Interpreter execution errors (these terminate the filter with a result of
// 0 in the kernel; we surface them for tests and treat them as deny).
var (
	ErrOutOfBounds  = errors.New("bpf: packet load out of bounds")
	ErrDivByZero    = errors.New("bpf: division by zero")
	ErrNotValidated = errors.New("bpf: program failed validation")
)

// Result is what a filter run returns along with its cost.
type Result struct {
	// Value is the 32-bit return value (for Seccomp, an action word).
	Value uint32
	// Executed is the number of instructions the run executed; the cost
	// model charges per executed instruction (the JIT constant folds into
	// the per-instruction cycle cost).
	Executed int
}

// VM executes classic BPF programs. A VM is stateless between runs and safe
// to reuse, including concurrently: all run state (registers and the
// scratch memory M[]) lives on Run's stack.
type VM struct {
	prog Program
}

// NewVM validates the program (against the extended length limit) and
// returns a VM for it.
func NewVM(p Program) (*VM, error) {
	if err := p.ValidateMax(ExtendedMaxInsns); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotValidated, err)
	}
	return &VM{prog: p}, nil
}

// Len returns the static program length in instructions.
func (vm *VM) Len() int { return len(vm.prog) }

// Run executes the program over data and returns the filter result.
func (vm *VM) Run(data []byte) (Result, error) {
	var a, x uint32
	var scratch [ScratchSlots]uint32
	executed := 0
	pc := 0
	for pc < len(vm.prog) {
		ins := vm.prog[pc]
		executed++
		pc++
		cls := ins.Op & 0x07
		switch cls {
		case ClassLD:
			v, err := load(ins, data, x, &scratch)
			if err != nil {
				return Result{Executed: executed}, err
			}
			a = v
		case ClassLDX:
			v, err := load(ins, data, x, &scratch)
			if err != nil {
				return Result{Executed: executed}, err
			}
			x = v
		case ClassST:
			scratch[ins.K] = a
		case ClassSTX:
			scratch[ins.K] = x
		case ClassALU:
			operand := ins.K
			if ins.Op&SrcX != 0 {
				operand = x
			}
			switch ins.Op & 0xf0 {
			case ALUAdd:
				a += operand
			case ALUSub:
				a -= operand
			case ALUMul:
				a *= operand
			case ALUDiv:
				if operand == 0 {
					return Result{Executed: executed}, ErrDivByZero
				}
				a /= operand
			case ALUMod:
				if operand == 0 {
					return Result{Executed: executed}, ErrDivByZero
				}
				a %= operand
			case ALUOr:
				a |= operand
			case ALUAnd:
				a &= operand
			case ALUXor:
				a ^= operand
			case ALULsh:
				a <<= operand & 31
			case ALURsh:
				a >>= operand & 31
			case ALUNeg:
				a = -a
			}
		case ClassJMP:
			operand := ins.K
			if ins.Op&SrcX != 0 {
				operand = x
			}
			switch ins.Op & 0xf0 {
			case JmpJA:
				pc += int(ins.K)
			case JmpJEQ:
				pc += jumpOffset(a == operand, ins)
			case JmpJGT:
				pc += jumpOffset(a > operand, ins)
			case JmpJGE:
				pc += jumpOffset(a >= operand, ins)
			case JmpJSET:
				pc += jumpOffset(a&operand != 0, ins)
			}
		case ClassRET:
			v := ins.K
			if ins.Op&0x18 == 0x10 { // BPF_A: return accumulator
				v = a
			}
			return Result{Value: v, Executed: executed}, nil
		case ClassMISC:
			if ins.Op&0xf8 == MiscTAX {
				x = a
			} else {
				a = x
			}
		}
	}
	// Validation guarantees a terminating RET, so this is unreachable.
	return Result{Executed: executed}, errors.New("bpf: fell off end of program")
}

func jumpOffset(cond bool, ins Instruction) int {
	if cond {
		return int(ins.Jt)
	}
	return int(ins.Jf)
}

func load(ins Instruction, data []byte, x uint32, scratch *[ScratchSlots]uint32) (uint32, error) {
	mode := ins.Op & 0xe0
	switch mode {
	case ModeIMM:
		return ins.K, nil
	case ModeLEN:
		return uint32(len(data)), nil
	case ModeMEM:
		return scratch[ins.K], nil
	case ModeABS, ModeIND:
		off := int64(ins.K)
		if mode == ModeIND {
			off += int64(x)
		}
		size := 4
		switch ins.Op & 0x18 {
		case SizeH:
			size = 2
		case SizeB:
			size = 1
		}
		if off < 0 || off+int64(size) > int64(len(data)) {
			return 0, ErrOutOfBounds
		}
		switch size {
		case 1:
			return uint32(data[off]), nil
		case 2:
			return uint32(binary.BigEndian.Uint16(data[off:])), nil
		default:
			// Seccomp data is defined in host (little) endianness for
			// 32-bit word loads; network filters use big-endian. The
			// seccomp compiler in this repo emits word loads, so words
			// are little-endian and sub-word loads keep the classic
			// network byte order.
			return binary.LittleEndian.Uint32(data[off:]), nil
		}
	case ModeMSH:
		off := int64(ins.K)
		if off < 0 || off >= int64(len(data)) {
			return 0, ErrOutOfBounds
		}
		return uint32(data[off]&0x0f) * 4, nil
	}
	return 0, fmt.Errorf("%w: load mode %#x", ErrBadOpcode, mode)
}
