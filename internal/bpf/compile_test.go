package bpf

import (
	"errors"
	"math/rand"
	"testing"
)

// runBoth executes prog over data through the interpreter and the compiled
// tier and fails unless value, error, and Executed all match.
func runBoth(t *testing.T, prog Program, data []byte) (Result, error) {
	t.Helper()
	vm, err := NewVM(prog)
	if err != nil {
		t.Fatalf("NewVM: %v", err)
	}
	ex, err := Compile(prog)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	want, wantErr := vm.Run(data)
	got, gotErr := ex.Run(data)
	if !errors.Is(gotErr, wantErr) || (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("error mismatch: interp %v, compiled %v", wantErr, gotErr)
	}
	if got != want {
		t.Fatalf("result mismatch: interp %+v, compiled %+v (err %v)", want, got, wantErr)
	}
	return want, wantErr
}

// seccompData builds a 64-byte seccomp_data-shaped buffer: nr and arch
// words followed by ip and six 64-bit args.
func seccompData(nr uint32, arch uint32, args ...uint64) []byte {
	buf := make([]byte, 64)
	putW := func(off int, v uint32) {
		buf[off] = byte(v)
		buf[off+1] = byte(v >> 8)
		buf[off+2] = byte(v >> 16)
		buf[off+3] = byte(v >> 24)
	}
	putW(0, nr)
	putW(4, arch)
	for i, a := range args {
		putW(16+8*i, uint32(a))
		putW(16+8*i+4, uint32(a>>32))
	}
	return buf
}

// ladderProgram builds the linear-dispatch shape the seccomp compiler
// emits: arch check, then a jeq ladder over nrs, each body returning a
// distinct value, with an optional ja trampoline after each body.
func ladderProgram(nrs []uint32, trampoline bool) Program {
	p := Program{
		Stmt(ClassLD|SizeW|ModeABS, 4),
		Jump(ClassJMP|JmpJEQ|SrcK, 0xC000003E, 1, 0),
		Stmt(ClassRET|SrcK, 0),
		Stmt(ClassLD|SizeW|ModeABS, 0),
	}
	for i, nr := range nrs {
		body := Program{Stmt(ClassRET|SrcK, 0x1000+uint32(i))}
		if trampoline {
			// jeq falls into a ja that hops over the body on miss.
			p = append(p, Jump(ClassJMP|JmpJEQ|SrcK, nr, 1, 0))
			p = append(p, Jump(ClassJMP|JmpJA, uint32(len(body)), 0, 0))
		} else {
			p = append(p, Jump(ClassJMP|JmpJEQ|SrcK, nr, 0, uint8(len(body))))
		}
		p = append(p, body...)
	}
	p = append(p, Stmt(ClassRET|SrcK, 7))
	return p
}

func TestCompiledLadderDifferential(t *testing.T) {
	nrs := []uint32{0, 1, 3, 9, 41, 42, 57, 59, 60, 231, 257, 302}
	for _, tramp := range []bool{false, true} {
		prog := ladderProgram(nrs, tramp)
		ex, err := Compile(prog)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Tables() == 0 {
			t.Fatalf("trampoline=%v: expected ladder table, got none", tramp)
		}
		for nr := uint32(0); nr < 400; nr++ {
			runBoth(t, prog, seccompData(nr, 0xC000003E))
		}
		// Wrong arch takes the kill edge before the ladder.
		runBoth(t, prog, seccompData(1, 0xDEAD))
	}
}

// TestCompiledLadderEntryMidChain jumps into the middle of a collapsed
// ladder: keys before the entry position must not match, and the charged
// Executed must cover only the compares actually reachable from there.
func TestCompiledLadderEntryMidChain(t *testing.T) {
	// jset picks an entry point: taken edge hops over the first two rungs.
	prog := Program{
		Stmt(ClassLD|SizeW|ModeABS, 0),
		Jump(ClassJMP|JmpJSET|SrcK, 0x8000_0000, 2, 0),
		Jump(ClassJMP|JmpJEQ|SrcK, 5, 5, 0), // rung 0
		Jump(ClassJMP|JmpJEQ|SrcK, 6, 4, 0), // rung 1
		Jump(ClassJMP|JmpJEQ|SrcK, 7, 3, 0), // rung 2 (mid-chain entry)
		Jump(ClassJMP|JmpJEQ|SrcK, 8, 2, 0), // rung 3
		Jump(ClassJMP|JmpJEQ|SrcK, 9, 1, 0), // rung 4
		Stmt(ClassRET|SrcK, 0xAA),           // fall-out
		Stmt(ClassRET|SrcK, 0xBB),           // match target
	}
	for _, v := range []uint32{4, 5, 6, 7, 8, 9, 10, 5 | 0x8000_0000, 7 | 0x8000_0000, 9 | 0x8000_0000} {
		runBoth(t, prog, seccompData(v, 0))
	}
}

// TestCompiledArgSetDifferential exercises the load-fused ladder: per-value
// reload-and-compare chains over an argument word, as argument-set checks
// emit, plus masked (ld+and+jeq) conditions.
func TestCompiledArgSetDifferential(t *testing.T) {
	var p Program
	p = append(p, Stmt(ClassLD|SizeW|ModeABS, 0))
	p = append(p, Jump(ClassJMP|JmpJEQ|SrcK, 42, 0, 14))
	// Allowed arg0 low-word values: 10, 20, 30, 40, 50; each pair reloads
	// the argument word and on match jumps to the masked check at index 12
	// (the final pair's miss edge exits to the deny RET at index 16).
	vals := []uint32{10, 20, 30, 40, 50}
	for i, v := range vals {
		jeqIdx := uint32(3 + 2*i)
		jf := uint8(0)
		if i == len(vals)-1 {
			jf = uint8(16 - (jeqIdx + 1))
		}
		p = append(p, Stmt(ClassLD|SizeW|ModeABS, 16))
		p = append(p, Jump(ClassJMP|JmpJEQ|SrcK, v, uint8(12-(jeqIdx+1)), jf))
	}
	// Masked condition: arg1 & 0xff == 3.
	p = append(p, Stmt(ClassLD|SizeW|ModeABS, 24))
	p = append(p, Stmt(ClassALU|ALUAnd|SrcK, 0xff))
	p = append(p, Jump(ClassJMP|JmpJEQ|SrcK, 3, 0, 1))
	p = append(p, Stmt(ClassRET|SrcK, 0x7fff0000))
	p = append(p, Stmt(ClassRET|SrcK, 0))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	ex, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Tables() == 0 {
		t.Fatal("expected a load-ladder table")
	}
	for _, nr := range []uint32{41, 42} {
		for _, a0 := range []uint64{0, 10, 15, 20, 30, 40, 50, 60, 10 << 32} {
			for _, a1 := range []uint64{0, 3, 0x103, 0xff} {
				runBoth(t, p, seccompData(nr, 0, a0, a1))
			}
		}
	}
}

func TestCompiledFaultsAndEdgeOps(t *testing.T) {
	cases := []struct {
		name string
		prog Program
		data []byte
	}{
		{"oob-abs", Program{Stmt(ClassLD|SizeW|ModeABS, 61), Stmt(ClassRET|SrcK, 1)}, seccompData(0, 0)},
		{"oob-abs-overflow", Program{Stmt(ClassLD|SizeW|ModeABS, 0xFFFFFFFF), Stmt(ClassRET|SrcK, 1)}, seccompData(0, 0)},
		{"oob-fused", Program{Stmt(ClassLD|SizeW|ModeABS, 61), Jump(ClassJMP|JmpJEQ|SrcK, 1, 0, 0), Stmt(ClassRET|SrcK, 1)}, seccompData(0, 0)},
		{"oob-ind", Program{Stmt(ClassLDX|ModeIMM, 100), Stmt(ClassLD|SizeW|ModeIND, 0), Stmt(ClassRET|SrcK, 1)}, seccompData(0, 0)},
		{"msh", Program{Stmt(ClassLDX|ModeMSH, 3), Stmt(ClassMISC|MiscTXA, 0), Stmt(ClassRET|0x10, 0)}, seccompData(0x0f000000, 0)},
		{"msh-oob", Program{Stmt(ClassLDX|ModeMSH, 99), Stmt(ClassRET|SrcK, 1)}, seccompData(0, 0)},
		{"div-x-zero", Program{Stmt(ClassLDX|ModeIMM, 0), Stmt(ClassALU|ALUDiv|SrcX, 0), Stmt(ClassRET|SrcK, 1)}, seccompData(0, 0)},
		{"mod-x-zero", Program{Stmt(ClassLDX|ModeIMM, 0), Stmt(ClassALU|ALUMod|SrcX, 0), Stmt(ClassRET|SrcK, 1)}, seccompData(0, 0)},
		{"scratch", Program{
			Stmt(ClassLD|ModeIMM, 77), Stmt(ClassST, 5), Stmt(ClassLD|ModeIMM, 0),
			Stmt(ClassLDX|ModeMEM, 5), Stmt(ClassMISC|MiscTXA, 0), Stmt(ClassRET|0x10, 0),
		}, seccompData(0, 0)},
		{"len-halfbyte", Program{
			Stmt(ClassLD|ModeLEN, 0), Stmt(ClassLDX|ModeLEN, 0),
			Stmt(ClassLD|SizeH|ModeABS, 0), Stmt(ClassALU|ALUAdd|SrcX, 0),
			Stmt(ClassLD|SizeB|ModeABS, 2), Stmt(ClassRET|0x10, 0),
		}, seccompData(0x01020304, 0)},
		{"alu-sweep", Program{
			Stmt(ClassLD|SizeW|ModeABS, 0), Stmt(ClassALU|ALUAdd|SrcK, 3),
			Stmt(ClassALU|ALUMul|SrcK, 7), Stmt(ClassALU|ALUXor|SrcK, 0x55aa),
			Stmt(ClassALU|ALULsh|SrcK, 33), Stmt(ClassALU|ALURsh|SrcK, 2),
			Stmt(ClassALU|ALUDiv|SrcK, 3), Stmt(ClassALU|ALUMod|SrcK, 1000),
			Stmt(ClassALU|ALUSub|SrcK, 5), Stmt(ClassALU|ALUOr|SrcK, 0x100),
			Stmt(ClassALU|ALUNeg, 0), Stmt(ClassRET|0x10, 0),
		}, seccompData(0xDEADBEEF, 0)},
		{"jump-into-fused-tail", Program{
			// jset hops straight to the jeq of an ld+jeq pair, so the
			// kept original in the shadowed slot must still run.
			Stmt(ClassLD|SizeW|ModeABS, 0),
			Jump(ClassJMP|JmpJSET|SrcK, 1, 1, 0),
			Stmt(ClassLD|SizeW|ModeABS, 4),
			Jump(ClassJMP|JmpJEQ|SrcK, 9, 0, 1),
			Stmt(ClassRET|SrcK, 0x11),
			Stmt(ClassRET|SrcK, 0x22),
		}, seccompData(9, 9)},
		{"empty-data", Program{Stmt(ClassLD|ModeLEN, 0), Stmt(ClassRET|0x10, 0)}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runBoth(t, tc.prog, tc.data)
		})
	}
}

// TestCompiledRandomDifferential fuzzes structurally: random (validated)
// programs over random buffers, interp vs compiled, value/error/Executed.
func TestCompiledRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD12AC0))
	ops := []uint16{
		ClassLD | ModeIMM, ClassLD | ModeLEN, ClassLD | ModeMEM,
		ClassLD | SizeW | ModeABS, ClassLD | SizeH | ModeABS, ClassLD | SizeB | ModeABS,
		ClassLD | SizeW | ModeIND, ClassLDX | ModeIMM, ClassLDX | ModeMEM,
		ClassLDX | SizeW | ModeABS, ClassLDX | ModeMSH,
		ClassST, ClassSTX,
		ClassALU | ALUAdd | SrcK, ClassALU | ALUSub | SrcX, ClassALU | ALUMul | SrcK,
		ClassALU | ALUDiv | SrcK, ClassALU | ALUAnd | SrcK, ClassALU | ALUOr | SrcX,
		ClassALU | ALUXor | SrcK, ClassALU | ALULsh | SrcK, ClassALU | ALURsh | SrcX,
		ClassALU | ALUMod | SrcK, ClassALU | ALUNeg,
		ClassJMP | JmpJA, ClassJMP | JmpJEQ | SrcK, ClassJMP | JmpJEQ | SrcX,
		ClassJMP | JmpJGT | SrcK, ClassJMP | JmpJGE | SrcK, ClassJMP | JmpJSET | SrcK,
		ClassRET | SrcK, ClassRET | 0x10,
		ClassMISC | MiscTAX, ClassMISC | MiscTXA,
	}
	valid := 0
	for iter := 0; iter < 4000; iter++ {
		n := 2 + rng.Intn(40)
		p := make(Program, n)
		for i := range p {
			op := ops[rng.Intn(len(ops))]
			ins := Instruction{Op: op, K: uint32(rng.Intn(80))}
			if rng.Intn(8) == 0 {
				ins.K = rng.Uint32()
			}
			if op&0x07 == ClassJMP {
				ins.Jt = uint8(rng.Intn(8))
				ins.Jf = uint8(rng.Intn(8))
				ins.K = uint32(rng.Intn(8))
			}
			p[i] = ins
		}
		p[n-1] = Stmt(ClassRET|SrcK, uint32(rng.Intn(4)))
		if p.Validate() != nil {
			continue
		}
		valid++
		data := make([]byte, rng.Intn(70))
		rng.Read(data)
		runBoth(t, p, data)
	}
	if valid < 200 {
		t.Fatalf("only %d valid random programs; generator too strict", valid)
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	if _, err := Compile(Program{}); err == nil {
		t.Fatal("Compile accepted an empty program")
	}
	if _, err := Compile(Program{Stmt(ClassLD|ModeIMM, 0)}); err == nil {
		t.Fatal("Compile accepted a program without a terminal RET")
	}
	if _, err := Compile(Program{Jump(ClassJMP|JmpJEQ|SrcK, 0, 9, 9), Stmt(ClassRET|SrcK, 0)}); err == nil {
		t.Fatal("Compile accepted an out-of-range jump")
	}
}

func TestExecLen(t *testing.T) {
	p := ladderProgram([]uint32{1, 2, 3, 4, 5}, false)
	ex, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Len() != len(p) {
		t.Fatalf("Len = %d, want %d", ex.Len(), len(p))
	}
}
