package bpf

import (
	"fmt"
	"strings"
)

// Disassemble renders a program in a tcpdump-like textual form, one
// instruction per line, for debugging and golden tests.
func Disassemble(p Program) string {
	var b strings.Builder
	for i, ins := range p {
		fmt.Fprintf(&b, "%4d: %s\n", i, disasmOne(i, ins))
	}
	return b.String()
}

func disasmOne(i int, ins Instruction) string {
	cls := ins.Op & 0x07
	switch cls {
	case ClassLD, ClassLDX:
		reg := "A"
		if cls == ClassLDX {
			reg = "X"
		}
		size := map[uint16]string{SizeW: "w", SizeH: "h", SizeB: "b"}[ins.Op&0x18]
		switch ins.Op & 0xe0 {
		case ModeIMM:
			return fmt.Sprintf("ld%s  #%d", strings.ToLower(reg), ins.K)
		case ModeABS:
			return fmt.Sprintf("ld%s %s [%d]", reg, size, ins.K)
		case ModeIND:
			return fmt.Sprintf("ld%s %s [x+%d]", reg, size, ins.K)
		case ModeMEM:
			return fmt.Sprintf("ld%s  M[%d]", strings.ToLower(reg), ins.K)
		case ModeLEN:
			return fmt.Sprintf("ld%s  len", strings.ToLower(reg))
		case ModeMSH:
			return fmt.Sprintf("ldx  4*([%d]&0xf)", ins.K)
		}
	case ClassST:
		return fmt.Sprintf("st   M[%d]", ins.K)
	case ClassSTX:
		return fmt.Sprintf("stx  M[%d]", ins.K)
	case ClassALU:
		name := map[uint16]string{
			ALUAdd: "add", ALUSub: "sub", ALUMul: "mul", ALUDiv: "div",
			ALUMod: "mod", ALUOr: "or", ALUAnd: "and", ALUXor: "xor",
			ALULsh: "lsh", ALURsh: "rsh", ALUNeg: "neg",
		}[ins.Op&0xf0]
		if ins.Op&0xf0 == ALUNeg {
			return "neg"
		}
		if ins.Op&SrcX != 0 {
			return fmt.Sprintf("%s  x", name)
		}
		return fmt.Sprintf("%s  #%d", name, ins.K)
	case ClassJMP:
		src := fmt.Sprintf("#%#x", ins.K)
		if ins.Op&SrcX != 0 {
			src = "x"
		}
		switch ins.Op & 0xf0 {
		case JmpJA:
			return fmt.Sprintf("ja   %d", i+1+int(ins.K))
		case JmpJEQ:
			return fmt.Sprintf("jeq  %s, %d, %d", src, i+1+int(ins.Jt), i+1+int(ins.Jf))
		case JmpJGT:
			return fmt.Sprintf("jgt  %s, %d, %d", src, i+1+int(ins.Jt), i+1+int(ins.Jf))
		case JmpJGE:
			return fmt.Sprintf("jge  %s, %d, %d", src, i+1+int(ins.Jt), i+1+int(ins.Jf))
		case JmpJSET:
			return fmt.Sprintf("jset %s, %d, %d", src, i+1+int(ins.Jt), i+1+int(ins.Jf))
		}
	case ClassRET:
		if ins.Op&0x18 == 0x10 {
			return "ret  a"
		}
		return fmt.Sprintf("ret  #%#x", ins.K)
	case ClassMISC:
		if ins.Op&0xf8 == MiscTAX {
			return "tax"
		}
		return "txa"
	}
	return fmt.Sprintf(".word %#x", ins.Op)
}
