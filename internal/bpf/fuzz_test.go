package bpf

import (
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzValidateAndRun decodes arbitrary bytes as sock_filter instructions
// and checks that validation and (for accepted programs) execution never
// panic and always terminate within the static program length — and that
// the compiled tier is a perfect stand-in for the interpreter: same value,
// same error, same Executed count, on every accepted program.
func FuzzValidateAndRun(f *testing.F) {
	// Seed with a real program: the Figure 1-style filter prologue.
	seed := Program{
		Stmt(ClassLD|ModeABS|SizeW, 4),
		Jump(ClassJMP|JmpJEQ|SrcK, 0xC000003E, 1, 0),
		Stmt(ClassRET, 0),
		Stmt(ClassLD|ModeABS|SizeW, 0),
		Jump(ClassJMP|JmpJEQ|SrcK, 135, 0, 1),
		Stmt(ClassRET, 0x7fff0000),
		Stmt(ClassRET, 0),
	}
	f.Add(encodeProgram(seed), []byte{135, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, []byte{})
	// Fusion-heavy seeds: a jeq ladder long enough to collapse into a
	// dispatch table (with and without ja trampolines), and an
	// argument-style reload-compare ladder with a masked condition, so the
	// fuzzer starts from programs that exercise every compiled-tier pass.
	f.Add(encodeProgram(ladderProgram([]uint32{0, 1, 3, 9, 42, 57, 231}, false)),
		seccompData(42, 0xC000003E))
	f.Add(encodeProgram(ladderProgram([]uint32{0, 1, 3, 9, 42, 57, 231}, true)),
		seccompData(58, 0xC000003E))
	argSeed := Program{
		Stmt(ClassLD|ModeABS|SizeW, 16),
		Jump(ClassJMP|JmpJEQ|SrcK, 10, 8, 0),
		Stmt(ClassLD|ModeABS|SizeW, 16),
		Jump(ClassJMP|JmpJEQ|SrcK, 20, 6, 0),
		Stmt(ClassLD|ModeABS|SizeW, 16),
		Jump(ClassJMP|JmpJEQ|SrcK, 30, 4, 0),
		Stmt(ClassLD|ModeABS|SizeW, 16),
		Jump(ClassJMP|JmpJEQ|SrcK, 40, 2, 0),
		Stmt(ClassLD|ModeABS|SizeW, 24),
		Stmt(ClassALU|ALUAnd|SrcK, 0xff),
		Jump(ClassJMP|JmpJEQ|SrcK, 3, 0, 1),
		Stmt(ClassRET, 0x7fff0000),
		Stmt(ClassRET, 0),
	}
	f.Add(encodeProgram(argSeed), seccompData(1, 0xC000003E, 30, 3))
	f.Fuzz(func(t *testing.T, progBytes, data []byte) {
		p := decodeProgram(progBytes)
		if len(p) == 0 {
			return
		}
		if err := p.ValidateMax(ExtendedMaxInsns); err != nil {
			return
		}
		vm, err := NewVM(p)
		if err != nil {
			t.Fatalf("validated program rejected: %v", err)
		}
		r, err := vm.Run(data)
		if err == nil && r.Executed > len(p) {
			t.Fatalf("executed %d > len %d", r.Executed, len(p))
		}
		ex, cerr := Compile(p)
		if cerr != nil {
			t.Fatalf("validated program failed to compile: %v", cerr)
		}
		cr, crerr := ex.Run(data)
		if (crerr == nil) != (err == nil) || (err != nil && !errors.Is(crerr, err)) {
			t.Fatalf("error mismatch: interp %v, compiled %v", err, crerr)
		}
		if cr != r {
			t.Fatalf("differential mismatch: interp %+v, compiled %+v", r, cr)
		}
	})
}

// encodeProgram/decodeProgram use the kernel's 8-byte sock_filter layout.
func encodeProgram(p Program) []byte {
	out := make([]byte, 0, len(p)*8)
	for _, ins := range p {
		var b [8]byte
		binary.LittleEndian.PutUint16(b[0:], ins.Op)
		b[2] = ins.Jt
		b[3] = ins.Jf
		binary.LittleEndian.PutUint32(b[4:], ins.K)
		out = append(out, b[:]...)
	}
	return out
}

func decodeProgram(b []byte) Program {
	n := len(b) / 8
	if n > 256 {
		n = 256
	}
	p := make(Program, 0, n)
	for i := 0; i < n; i++ {
		p = append(p, Instruction{
			Op: binary.LittleEndian.Uint16(b[i*8:]),
			Jt: b[i*8+2],
			Jf: b[i*8+3],
			K:  binary.LittleEndian.Uint32(b[i*8+4:]),
		})
	}
	return p
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	p := Program{
		Stmt(ClassLD|ModeABS|SizeW, 0),
		Jump(ClassJMP|JmpJEQ|SrcK, 42, 1, 2),
		Stmt(ClassRET, 0x7fff0000),
	}
	back := decodeProgram(encodeProgram(p))
	if len(back) != len(p) {
		t.Fatalf("length %d != %d", len(back), len(p))
	}
	for i := range p {
		if p[i] != back[i] {
			t.Fatalf("instruction %d: %+v != %+v", i, p[i], back[i])
		}
	}
}
