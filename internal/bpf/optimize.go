package bpf

// Optimize is the JIT's stand-in optimization pipeline: the kernel's cBPF
// JIT performs similar cleanups before emitting native code. Passes:
//
//  1. jump threading — a branch targeting an unconditional jump (or a
//     conditional branch's target chain) is retargeted to the final
//     destination;
//  2. dead-code elimination — instructions unreachable from the entry are
//     removed and jump offsets recomputed.
//
// Optimization preserves semantics exactly (differentially tested) and
// never increases executed-instruction counts.
func Optimize(p Program) Program {
	out := threadJumps(p)
	out = eliminateDead(out)
	return out
}

// target returns the resolved destination index of a (possibly chained)
// jump from instruction i taking branch offset off, following JA chains.
func resolveChain(p Program, idx int) int {
	seen := 0
	for idx < len(p) && seen < len(p) {
		ins := p[idx]
		if ins.Op&0x07 == ClassJMP && ins.Op&0xf0 == JmpJA {
			idx = idx + 1 + int(ins.K)
			seen++
			continue
		}
		break
	}
	return idx
}

// threadJumps retargets conditional branches and JAs through JA chains.
// Offsets that would not fit their field width are left untouched.
func threadJumps(p Program) Program {
	out := make(Program, len(p))
	copy(out, p)
	for i, ins := range out {
		if ins.Op&0x07 != ClassJMP {
			continue
		}
		if ins.Op&0xf0 == JmpJA {
			dst := resolveChain(out, i+1+int(ins.K))
			if dst > i {
				out[i].K = uint32(dst - i - 1)
			}
			continue
		}
		// Conditional: thread both arms.
		jt := resolveChain(out, i+1+int(ins.Jt))
		jf := resolveChain(out, i+1+int(ins.Jf))
		if d := jt - i - 1; d >= 0 && d <= 255 {
			out[i].Jt = uint8(d)
		}
		if d := jf - i - 1; d >= 0 && d <= 255 {
			out[i].Jf = uint8(d)
		}
	}
	return out
}

// eliminateDead removes unreachable instructions and rewrites offsets.
func eliminateDead(p Program) Program {
	if len(p) == 0 {
		return p
	}
	reachable := make([]bool, len(p))
	var walk func(int)
	walk = func(i int) {
		for i < len(p) && !reachable[i] {
			reachable[i] = true
			ins := p[i]
			if ins.Op&0x07 == ClassRET {
				return
			}
			if ins.Op&0x07 == ClassJMP {
				if ins.Op&0xf0 == JmpJA {
					i = i + 1 + int(ins.K)
					continue
				}
				walk(i + 1 + int(ins.Jt))
				i = i + 1 + int(ins.Jf)
				continue
			}
			i++
		}
	}
	walk(0)

	// New index of each old instruction.
	newIdx := make([]int, len(p))
	n := 0
	for i := range p {
		newIdx[i] = n
		if reachable[i] {
			n++
		}
	}
	if n == len(p) {
		return p
	}
	out := make(Program, 0, n)
	for i, ins := range p {
		if !reachable[i] {
			continue
		}
		if ins.Op&0x07 == ClassJMP {
			if ins.Op&0xf0 == JmpJA {
				ins.K = uint32(newIdx[i+1+int(ins.K)] - newIdx[i] - 1)
			} else {
				ins.Jt = uint8(newIdx[i+1+int(ins.Jt)] - newIdx[i] - 1)
				ins.Jf = uint8(newIdx[i+1+int(ins.Jf)] - newIdx[i] - 1)
			}
		}
		out = append(out, ins)
	}
	return out
}
