package bpf

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// This file implements the compiled execution tier for classic BPF: a
// Compile pass that pre-decodes a validated program once into a typed op
// stream with resolved absolute jump targets and fused common instruction
// pairs, executed by a specialized loop with no per-step opcode decode.
//
// The miss path of every Draco engine ultimately runs a Seccomp filter
// through this machinery (paper §IV: filter execution dominates cold-start
// and VAT-miss cost), so the compiled tier is built around the code the
// seccomp compilers emit:
//
//   - ld+jeq pairs (argument-value compares) fuse into one op.
//   - ld+and+jeq triples (masked-condition compares) fuse into one op.
//   - jeq ladders — chains of constant equality tests linked by their
//     false edges, exactly the per-syscall dispatch of a linear-shape
//     filter — collapse into a table dispatch (dense table when the key
//     span is small, binary search otherwise).
//   - Unconditional-jump trampolines (the ja hops the compilers emit when
//     a body exceeds an 8-bit displacement) are threaded away: branch
//     targets point past them, with the traversed instructions charged to
//     the branch's cost.
//
// Every transformation preserves the interpreter's observable behaviour
// bit for bit — return value, error, and the Executed instruction count
// the kernelmodel/energymodel cycle accounting charges for. Fused ops
// carry the number of original instructions they stand for on each exit
// edge, and table dispatches charge the exact number of ladder compares
// the interpreter would have executed for the matched (or missed) key.

// Dense opcodes for the pre-decoded stream. One op per original
// instruction slot: fused ops live in the slot of their first instruction
// and jump over the rest, while the skipped slots keep their original ops
// so jumps into the middle of a fused pattern stay valid.
const (
	opRetK uint8 = iota
	opRetA

	opLdImm
	opLdLen
	opLdMem
	opLdAbsW
	opLdAbsH
	opLdAbsB
	opLdIndW
	opLdIndH
	opLdIndB

	opLdxImm
	opLdxLen
	opLdxMem
	opLdxAbsW
	opLdxAbsH
	opLdxAbsB
	opLdxIndW
	opLdxIndH
	opLdxIndB
	opLdxMsh

	opSt
	opStx

	opAddK
	opSubK
	opMulK
	opDivK
	opOrK
	opAndK
	opLshK
	opRshK
	opModK
	opXorK
	opNeg

	opAddX
	opSubX
	opMulX
	opDivX
	opOrX
	opAndX
	opLshX
	opRshX
	opModX
	opXorX

	opJa
	opJeqK
	opJgtK
	opJgeK
	opJsetK
	opJeqX
	opJgtX
	opJgeX
	opJsetX

	opTax
	opTxa

	// Fused ops (see the file comment).
	opLdJeq    // ld [k]; jeq k' — compare a freshly loaded word
	opLdAndJeq // ld [k]; and m; jeq k' — masked-condition compare
	opSwitch   // table dispatch on A over a jeq ladder
	opLdSwitch // ld [k]; table dispatch — ladder entered through its load
)

// xop is one pre-decoded op. Field use varies by opcode:
//
//	plain ops:  k = immediate/offset, aux = bounds limit for packet loads
//	jumps:      jt/jf = absolute targets, costT/costF = instructions
//	            charged on the taken/fallthrough edge (>1 after threading)
//	opLdJeq:    off = load offset, k = compare value
//	opLdAndJeq: off = load offset, aux = mask, k = compare value
//	opSwitch:   k = table index, aux = entry position in the ladder,
//	            jt = cumulative ladder cost at the entry, costT = lead
//	            instructions charged before the ladder (the fused load)
type xop struct {
	code  uint8
	_     uint8
	costT uint16
	costF uint16
	_     uint16
	k     uint32
	off   uint32
	aux   uint32
	jt    int32
	jf    int32
}

// tableEnt is one ladder key: its position in the chain, its absolute
// match target, and the total instructions the interpreter executes from
// the chain head through the matching compare.
type tableEnt struct {
	pos  int32
	tgt  int32
	cost int32
}

// jumpTable is one collapsed jeq ladder.
type jumpTable struct {
	// dense maps (key - min) to entry index + 1 when the key span is
	// small; nil selects binary search over keys.
	dense []int32
	min   uint32
	keys  []uint32 // sorted
	ent   []tableEnt
	// cumN is the total fallthrough cost of the whole ladder; def is where
	// a full miss exits.
	cumN int32
	def  int32
}

// tableSorter orders a table's keys (with their entries) for binary search.
type tableSorter struct {
	keys []uint32
	ents []tableEnt
}

func (s *tableSorter) Len() int           { return len(s.keys) }
func (s *tableSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *tableSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.ents[i], s.ents[j] = s.ents[j], s.ents[i]
}

// find returns the entry index for v, or -1.
func (t *jumpTable) find(v uint32) int32 {
	if t.dense != nil {
		d := v - t.min
		if d < uint32(len(t.dense)) {
			return t.dense[d] - 1
		}
		return -1
	}
	lo, hi := 0, len(t.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.keys[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.keys) && t.keys[lo] == v {
		return int32(lo)
	}
	return -1
}

// Exec is a compiled program: immutable after Compile and safe for
// concurrent use (all run state lives on Run's stack).
type Exec struct {
	ops    []xop
	tables []jumpTable
	n      int
}

// Len returns the original program length in instructions.
func (e *Exec) Len() int { return e.n }

// Tables returns how many ladder-dispatch tables the compiler built
// (diagnostic; benchmarks and tests assert fusion actually happened).
func (e *Exec) Tables() int { return len(e.tables) }

// Compile validates a program (against the extended length limit) and
// lowers it to the compiled execution tier.
func Compile(p Program) (*Exec, error) {
	if err := p.ValidateMax(ExtendedMaxInsns); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotValidated, err)
	}
	e := &Exec{ops: make([]xop, len(p)), n: len(p)}
	for i, ins := range p {
		e.ops[i] = decode(ins, int32(i))
	}
	e.threadJumps()
	e.buildLadders()
	e.fuseLoads()
	e.buildLoadLadders()
	return e, nil
}

// decode lowers one instruction to its dense op with absolute targets.
func decode(ins Instruction, pc int32) xop {
	op := xop{costT: 1, costF: 1, jt: pc + 1, jf: pc + 1}
	switch ins.Op & 0x07 {
	case ClassLD, ClassLDX:
		ldx := ins.Op&0x07 == ClassLDX
		size := uint32(4)
		switch ins.Op & 0x18 {
		case SizeH:
			size = 2
		case SizeB:
			size = 1
		}
		switch ins.Op & 0xe0 {
		case ModeIMM:
			op.code, op.k = opLdImm, ins.K
		case ModeLEN:
			op.code = opLdLen
		case ModeMEM:
			op.code, op.k = opLdMem, ins.K
		case ModeABS:
			op.code = opLdAbsW + uint8(map4(size))
			op.k, op.aux = ins.K, ins.K+size // aux: precomputed bounds limit
		case ModeIND:
			op.code = opLdIndW + uint8(map4(size))
			op.k, op.aux = ins.K, size
		case ModeMSH:
			op.code, op.k = opLdxMsh, ins.K
			return op
		}
		if ldx {
			op.code += opLdxImm - opLdImm
		}
	case ClassST:
		op.code, op.k = opSt, ins.K
	case ClassSTX:
		op.code, op.k = opStx, ins.K
	case ClassALU:
		srcX := ins.Op&SrcX != 0
		switch ins.Op & 0xf0 {
		case ALUAdd:
			op.code = opAddK
		case ALUSub:
			op.code = opSubK
		case ALUMul:
			op.code = opMulK
		case ALUDiv:
			op.code = opDivK
		case ALUOr:
			op.code = opOrK
		case ALUAnd:
			op.code = opAndK
		case ALULsh:
			op.code = opLshK
		case ALURsh:
			op.code = opRshK
		case ALUMod:
			op.code = opModK
		case ALUXor:
			op.code = opXorK
		case ALUNeg:
			op.code = opNeg
			return op
		}
		if srcX {
			op.code += opAddX - opAddK
		} else {
			op.k = ins.K
		}
	case ClassJMP:
		switch ins.Op & 0xf0 {
		case JmpJA:
			op.code = opJa
			op.jt = pc + 1 + int32(ins.K)
			return op
		case JmpJEQ:
			op.code = opJeqK
		case JmpJGT:
			op.code = opJgtK
		case JmpJGE:
			op.code = opJgeK
		case JmpJSET:
			op.code = opJsetK
		}
		if ins.Op&SrcX != 0 {
			op.code += opJeqX - opJeqK
		} else {
			op.k = ins.K
		}
		op.jt = pc + 1 + int32(ins.Jt)
		op.jf = pc + 1 + int32(ins.Jf)
	case ClassRET:
		if ins.Op&0x18 == 0x10 {
			op.code = opRetA
		} else {
			op.code, op.k = opRetK, ins.K
		}
	case ClassMISC:
		if ins.Op&0xf8 == MiscTAX {
			op.code = opTax
		} else {
			op.code = opTxa
		}
	}
	return op
}

// map4 maps a load size in bytes to the W/H/B opcode offset.
func map4(size uint32) uint32 {
	switch size {
	case 2:
		return 1
	case 1:
		return 2
	}
	return 0
}

// threadJumps redirects branch targets past chains of unconditional
// jumps, charging each threaded ja to the branch edge's cost. Capped so
// costs stay small; a residual ja simply executes normally.
func (e *Exec) threadJumps() {
	follow := func(t int32, cost uint16) (int32, uint16) {
		for hops := 0; hops < 32 && e.ops[t].code == opJa; hops++ {
			cost++
			t = e.ops[t].jt
		}
		return t, cost
	}
	for i := range e.ops {
		op := &e.ops[i]
		switch op.code {
		case opJa:
			op.jt, op.costT = follow(op.jt, op.costT)
		case opJeqK, opJgtK, opJgeK, opJsetK, opJeqX, opJgtX, opJgeX, opJsetX:
			op.jt, op.costT = follow(op.jt, op.costT)
			op.jf, op.costF = follow(op.jf, op.costF)
		}
	}
}

// ladderMinLen is the shortest chain worth a dispatch table; shorter
// ladders stay as (possibly load-fused) compare ops.
const ladderMinLen = 4

// denseMaxSpan bounds the key span a dense O(1) table may cover; wider
// ladders use binary search.
const denseMaxSpan = 4096

// buildLadders collapses chains of constant-equality jumps linked by
// their false edges — the per-syscall dispatch of a linear filter — into
// shared table dispatches. Every chain member becomes a opSwitch with its
// own entry position, so jumps into the middle of the ladder dispatch
// over exactly the compares the interpreter would still execute.
func (e *Exec) buildLadders() {
	for s := range e.ops {
		if e.ops[s].code != opJeqK {
			continue
		}
		chain, keys := e.collectChain(int32(s), opJeqK, 0)
		if len(chain) < ladderMinLen {
			continue
		}
		ti := e.makeTable(chain, keys, func(r int32) (uint16, uint16, int32, uint32) {
			op := &e.ops[r]
			return op.costF, op.costT, op.jt, op.k
		})
		cum := int32(0)
		for p, r := range chain {
			op := &e.ops[r]
			missCost := int32(op.costF)
			e.ops[r] = xop{code: opSwitch, k: uint32(ti), aux: uint32(p), jt: cum}
			cum += missCost
		}
	}
}

// collectChain walks false-edge links from head while each member is a
// `code` op (and, for load ladders, loads the same offset `off`),
// stopping at duplicate keys so table keys stay unique.
func (e *Exec) collectChain(head int32, code uint8, off uint32) ([]int32, map[uint32]bool) {
	var chain []int32
	keys := map[uint32]bool{}
	for cur := head; ; cur = e.ops[cur].jf {
		op := &e.ops[cur]
		if op.code != code || (code == opLdJeq && op.off != off) || keys[op.k] {
			break
		}
		keys[op.k] = true
		chain = append(chain, cur)
	}
	return chain, keys
}

// makeTable builds one jumpTable for a chain. member reports a rung's
// (missCost, matchCost, matchTarget, key).
func (e *Exec) makeTable(chain []int32, _ map[uint32]bool, member func(int32) (uint16, uint16, int32, uint32)) int {
	n := len(chain)
	ents := make([]tableEnt, 0, n)
	keys := make([]uint32, 0, n)
	cum := int32(0)
	var minK, maxK uint32
	for p, r := range chain {
		missCost, matchCost, tgt, key := member(r)
		ents = append(ents, tableEnt{pos: int32(p), tgt: tgt, cost: cum + int32(matchCost)})
		keys = append(keys, key)
		cum += int32(missCost)
		if p == 0 || key < minK {
			minK = key
		}
		if p == 0 || key > maxK {
			maxK = key
		}
	}
	last := &e.ops[chain[n-1]]
	t := jumpTable{cumN: cum, def: last.jf}
	sort.Sort(&tableSorter{keys: keys, ents: ents})
	t.keys, t.ent = keys, ents
	if span := uint64(maxK) - uint64(minK) + 1; span <= denseMaxSpan {
		t.min = minK
		t.dense = make([]int32, span)
		for i, k := range keys {
			t.dense[k-minK] = int32(i) + 1
		}
	}
	e.tables = append(e.tables, t)
	return len(e.tables) - 1
}

// fuseLoads merges a word load from the data buffer with the compare (or
// ladder dispatch) that consumes it. The consumed slots keep their
// original ops, so jumps that land there still behave.
func (e *Exec) fuseLoads() {
	for s := 0; s+1 < len(e.ops); s++ {
		ld := &e.ops[s]
		if ld.code != opLdAbsW {
			continue
		}
		next := &e.ops[s+1]
		switch {
		case next.code == opAndK && s+2 < len(e.ops) && e.ops[s+2].code == opJeqK:
			jeq := &e.ops[s+2]
			e.ops[s] = xop{
				code: opLdAndJeq, off: ld.k, aux: next.k, k: jeq.k,
				costT: 2 + jeq.costT, costF: 2 + jeq.costF, jt: jeq.jt, jf: jeq.jf,
			}
		case next.code == opSwitch:
			e.ops[s] = xop{
				code: opLdSwitch, off: ld.k, k: next.k, aux: next.aux,
				jt: next.jt, costT: 1,
			}
		case next.code == opJeqK:
			e.ops[s] = xop{
				code: opLdJeq, off: ld.k, k: next.k,
				costT: 1 + next.costT, costF: 1 + next.costF, jt: next.jt, jf: next.jf,
			}
		}
	}
}

// buildLoadLadders collapses chains of fused load+compare ops that reload
// the same word — the per-value ladders of argument-set checks, where
// every allowed tuple reloads the argument and compares it — into load
// dispatches. The data buffer cannot change mid-run, so one load decides
// the whole ladder.
func (e *Exec) buildLoadLadders() {
	for s := range e.ops {
		if e.ops[s].code != opLdJeq {
			continue
		}
		chain, keys := e.collectChain(int32(s), opLdJeq, e.ops[s].off)
		if len(chain) < ladderMinLen {
			continue
		}
		off := e.ops[s].off
		ti := e.makeTable(chain, keys, func(r int32) (uint16, uint16, int32, uint32) {
			op := &e.ops[r]
			return op.costF, op.costT, op.jt, op.k
		})
		cum := int32(0)
		for p, r := range chain {
			op := &e.ops[r]
			missCost := int32(op.costF)
			e.ops[r] = xop{code: opLdSwitch, off: off, k: uint32(ti), aux: uint32(p), jt: cum}
			cum += missCost
		}
	}
}

// Run executes the compiled program over data. Results — value, error,
// and the Executed instruction count — are identical to VM.Run on the
// same program and data; the differential fuzz and workload suites pin
// this. Safe for concurrent use: all mutable state is local.
func (e *Exec) Run(data []byte) (Result, error) {
	var scratch [ScratchSlots]uint32
	var a, x uint32
	ops := e.ops
	dlen := uint32(len(data))
	executed := 0
	pc := int32(0)
	for {
		op := &ops[pc]
		switch op.code {
		case opRetK:
			return Result{Value: op.k, Executed: executed + 1}, nil
		case opRetA:
			return Result{Value: a, Executed: executed + 1}, nil

		case opLdImm:
			a = op.k
		case opLdLen:
			a = dlen
		case opLdMem:
			a = scratch[op.k&(ScratchSlots-1)]
		case opLdAbsW:
			if op.aux > dlen || op.aux < op.k {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			a = binary.LittleEndian.Uint32(data[op.k:])
		case opLdAbsH:
			if op.aux > dlen || op.aux < op.k {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			a = uint32(binary.BigEndian.Uint16(data[op.k:]))
		case opLdAbsB:
			if op.aux > dlen || op.aux < op.k {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			a = uint32(data[op.k])
		case opLdIndW:
			off := int64(op.k) + int64(x)
			if off+4 > int64(dlen) {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			a = binary.LittleEndian.Uint32(data[off:])
		case opLdIndH:
			off := int64(op.k) + int64(x)
			if off+2 > int64(dlen) {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			a = uint32(binary.BigEndian.Uint16(data[off:]))
		case opLdIndB:
			off := int64(op.k) + int64(x)
			if off+1 > int64(dlen) {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			a = uint32(data[off])

		case opLdxImm:
			x = op.k
		case opLdxLen:
			x = dlen
		case opLdxMem:
			x = scratch[op.k&(ScratchSlots-1)]
		case opLdxAbsW:
			if op.aux > dlen || op.aux < op.k {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			x = binary.LittleEndian.Uint32(data[op.k:])
		case opLdxAbsH:
			if op.aux > dlen || op.aux < op.k {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			x = uint32(binary.BigEndian.Uint16(data[op.k:]))
		case opLdxAbsB:
			if op.aux > dlen || op.aux < op.k {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			x = uint32(data[op.k])
		case opLdxIndW:
			off := int64(op.k) + int64(x)
			if off+4 > int64(dlen) {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			x = binary.LittleEndian.Uint32(data[off:])
		case opLdxIndH:
			off := int64(op.k) + int64(x)
			if off+2 > int64(dlen) {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			x = uint32(binary.BigEndian.Uint16(data[off:]))
		case opLdxIndB:
			off := int64(op.k) + int64(x)
			if off+1 > int64(dlen) {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			x = uint32(data[off])
		case opLdxMsh:
			if op.k >= dlen {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			x = uint32(data[op.k]&0x0f) * 4

		case opSt:
			scratch[op.k&(ScratchSlots-1)] = a
		case opStx:
			scratch[op.k&(ScratchSlots-1)] = x

		case opAddK:
			a += op.k
		case opSubK:
			a -= op.k
		case opMulK:
			a *= op.k
		case opDivK:
			a /= op.k // K != 0 validated
		case opOrK:
			a |= op.k
		case opAndK:
			a &= op.k
		case opLshK:
			a <<= op.k & 31
		case opRshK:
			a >>= op.k & 31
		case opModK:
			a %= op.k // K != 0 validated
		case opXorK:
			a ^= op.k
		case opNeg:
			a = -a

		case opAddX:
			a += x
		case opSubX:
			a -= x
		case opMulX:
			a *= x
		case opDivX:
			if x == 0 {
				return Result{Executed: executed + 1}, ErrDivByZero
			}
			a /= x
		case opOrX:
			a |= x
		case opAndX:
			a &= x
		case opLshX:
			a <<= x & 31
		case opRshX:
			a >>= x & 31
		case opModX:
			if x == 0 {
				return Result{Executed: executed + 1}, ErrDivByZero
			}
			a %= x
		case opXorX:
			a ^= x

		case opJa:
			executed += int(op.costT)
			pc = op.jt
			continue
		case opJeqK:
			pc = e.branch(op, a == op.k, &executed)
			continue
		case opJgtK:
			pc = e.branch(op, a > op.k, &executed)
			continue
		case opJgeK:
			pc = e.branch(op, a >= op.k, &executed)
			continue
		case opJsetK:
			pc = e.branch(op, a&op.k != 0, &executed)
			continue
		case opJeqX:
			pc = e.branch(op, a == x, &executed)
			continue
		case opJgtX:
			pc = e.branch(op, a > x, &executed)
			continue
		case opJgeX:
			pc = e.branch(op, a >= x, &executed)
			continue
		case opJsetX:
			pc = e.branch(op, a&x != 0, &executed)
			continue

		case opTax:
			x = a
		case opTxa:
			a = x

		case opLdJeq:
			if op.off+4 > dlen || op.off+4 < op.off {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			a = binary.LittleEndian.Uint32(data[op.off:])
			pc = e.branch(op, a == op.k, &executed)
			continue
		case opLdAndJeq:
			if op.off+4 > dlen || op.off+4 < op.off {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			a = binary.LittleEndian.Uint32(data[op.off:]) & op.aux
			pc = e.branch(op, a == op.k, &executed)
			continue
		case opSwitch:
			pc = e.dispatch(op, a, &executed)
			continue
		case opLdSwitch:
			if op.off+4 > dlen || op.off+4 < op.off {
				return Result{Executed: executed + 1}, ErrOutOfBounds
			}
			a = binary.LittleEndian.Uint32(data[op.off:])
			pc = e.dispatch(op, a, &executed)
			continue
		}
		executed++
		pc++
	}
}

// branch charges the chosen edge's cost and returns its target.
func (e *Exec) branch(op *xop, cond bool, executed *int) int32 {
	if cond {
		*executed += int(op.costT)
		return op.jt
	}
	*executed += int(op.costF)
	return op.jf
}

// dispatch resolves a ladder lookup: the matched key (if reachable from
// this entry position) wins with the exact cost of the compares the
// interpreter would have run; otherwise the whole remaining ladder is
// charged and control exits at the fall-out target.
func (e *Exec) dispatch(op *xop, v uint32, executed *int) int32 {
	t := &e.tables[op.k]
	base := op.jt // cumulative ladder cost at this entry
	if ei := t.find(v); ei >= 0 && t.ent[ei].pos >= int32(op.aux) {
		*executed += int(op.costT) + int(t.ent[ei].cost-base)
		return t.ent[ei].tgt
	}
	*executed += int(op.costT) + int(t.cumN-base)
	return t.def
}
