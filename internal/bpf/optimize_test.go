package bpf

import (
	"math/rand"
	"testing"
)

func TestThreadJumpChains(t *testing.T) {
	// jeq -> ja -> ja -> ret 1; fall-through: ret 0.
	p := Program{
		Stmt(ClassLD|ModeABS|SizeW, 0),
		Jump(ClassJMP|JmpJEQ|SrcK, 5, 0, 3), // jt -> ja at 2
		Jump(ClassJMP|JmpJA, 1, 0, 0),       // -> ja at 4
		Stmt(ClassRET, 0),                   // jf target
		Jump(ClassJMP|JmpJA, 0, 0, 0),       // -> ret 1
		Stmt(ClassRET, 1),
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	opt := Optimize(p)
	if err := opt.Validate(); err != nil {
		t.Fatalf("optimized program invalid: %v", err)
	}
	// The chain collapses: the JAs become dead and are eliminated.
	if len(opt) >= len(p) {
		t.Fatalf("no shrink: %d -> %d", len(p), len(opt))
	}
	// Semantics preserved.
	for _, nr := range []byte{5, 6} {
		data := []byte{nr, 0, 0, 0}
		a := mustRun(t, p, data)
		b := mustRun(t, opt, data)
		if a.Value != b.Value {
			t.Fatalf("nr=%d: %d != %d", nr, a.Value, b.Value)
		}
		if b.Executed > a.Executed {
			t.Fatalf("nr=%d: optimized executed more (%d > %d)", nr, b.Executed, a.Executed)
		}
	}
}

func TestEliminateDeadCode(t *testing.T) {
	p := Program{
		Jump(ClassJMP|JmpJA, 2, 0, 0), // skip two dead instructions
		Stmt(ClassALU|ALUAdd|SrcK, 1), // dead
		Stmt(ClassRET, 99),            // dead
		Stmt(ClassRET, 7),
	}
	opt := Optimize(p)
	if len(opt) >= len(p) {
		t.Fatalf("dead code not eliminated: %d -> %d", len(p), len(opt))
	}
	if r := mustRun(t, opt, nil); r.Value != 7 {
		t.Fatalf("value = %d", r.Value)
	}
}

func TestOptimizeIdempotentOnCleanCode(t *testing.T) {
	p := Program{
		Stmt(ClassLD|ModeABS|SizeW, 0),
		Jump(ClassJMP|JmpJEQ|SrcK, 1, 0, 1),
		Stmt(ClassRET, 1),
		Stmt(ClassRET, 0),
	}
	opt := Optimize(p)
	if len(opt) != len(p) {
		t.Fatalf("clean program changed length: %d -> %d", len(p), len(opt))
	}
}

func mustRun(t *testing.T, p Program, data []byte) Result {
	t.Helper()
	vm, err := NewVM(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := vm.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestOptimizeDifferential checks semantic equivalence over random valid
// programs and random inputs, and that optimization never slows execution.
func TestOptimizeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		p := randomValidProgram(rng.Int63())
		if p.Validate() != nil {
			continue
		}
		opt := Optimize(p)
		if err := opt.ValidateMax(ExtendedMaxInsns); err != nil {
			t.Fatalf("trial %d: optimized invalid: %v\noriginal:\n%s\noptimized:\n%s",
				trial, err, Disassemble(p), Disassemble(opt))
		}
		vmA, err := NewVM(p)
		if err != nil {
			continue
		}
		vmB, err := NewVM(opt)
		if err != nil {
			t.Fatalf("trial %d: optimized VM: %v", trial, err)
		}
		for probe := 0; probe < 20; probe++ {
			data := make([]byte, 64)
			rng.Read(data)
			ra, errA := vmA.Run(data)
			rb, errB := vmB.Run(data)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("trial %d: error divergence %v vs %v", trial, errA, errB)
			}
			if errA != nil {
				continue
			}
			if ra.Value != rb.Value {
				t.Fatalf("trial %d: value %d != %d\noriginal:\n%s\noptimized:\n%s",
					trial, ra.Value, rb.Value, Disassemble(p), Disassemble(opt))
			}
			if rb.Executed > ra.Executed {
				t.Fatalf("trial %d: optimized executed more (%d > %d)", trial, rb.Executed, ra.Executed)
			}
		}
	}
}

func BenchmarkOptimize(b *testing.B) {
	p := randomValidProgram(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimize(p)
	}
}
