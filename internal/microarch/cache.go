// Package microarch provides the cycle-accounting memory hierarchy used by
// the hardware Draco evaluation (paper §X-C, Table II): set-associative
// write-back L1/L2/L3 caches with LRU replacement, a DRAM latency model,
// and a TLB for VAT address translation (paper §VII-A notes VAT accesses
// enjoy good TLB locality because VATs are only a few KB).
package microarch

import "fmt"

// Cache is one set-associative cache level with true-LRU replacement.
type Cache struct {
	Name     string
	Sets     int
	Ways     int
	LineSize int
	// Latency is the access time in cycles for a hit at this level.
	Latency uint64

	tags  [][]uint64 // per set, LRU-ordered: index 0 is MRU
	stats CacheStats
}

// CacheStats counts accesses at one level.
type CacheStats struct {
	Accesses uint64
	Misses   uint64
}

// HitRate returns the fraction of accesses that hit.
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 1 - float64(s.Misses)/float64(s.Accesses)
}

// NewCache builds a cache from total size in bytes.
func NewCache(name string, sizeBytes, ways, lineSize int, latency uint64) *Cache {
	sets := sizeBytes / (ways * lineSize)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("microarch: %s has %d sets; need a power of two", name, sets))
	}
	c := &Cache{Name: name, Sets: sets, Ways: ways, LineSize: lineSize, Latency: latency}
	c.tags = make([][]uint64, sets)
	return c
}

func (c *Cache) set(addr uint64) (int, uint64) {
	line := addr / uint64(c.LineSize)
	return int(line % uint64(c.Sets)), line
}

// Lookup probes the cache and updates LRU on hit. It does not allocate.
func (c *Cache) Lookup(addr uint64) bool {
	idx, line := c.set(addr)
	ways := c.tags[idx]
	for i, t := range ways {
		if t == line {
			// Move to MRU.
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			return true
		}
	}
	return false
}

// Fill inserts a line, evicting LRU if needed.
func (c *Cache) Fill(addr uint64) {
	idx, line := c.set(addr)
	ways := c.tags[idx]
	for i, t := range ways {
		if t == line {
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			return
		}
	}
	if len(ways) < c.Ways {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = line
	c.tags[idx] = ways
}

// Stats returns this level's counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// InvalidateAll empties the cache.
func (c *Cache) InvalidateAll() {
	for i := range c.tags {
		c.tags[i] = c.tags[i][:0]
	}
}

// Hierarchy is the L1D/L2/L3/DRAM chain of Table II.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
	L3 *Cache
	// DRAMLatency is the flat cycles-to-main-memory cost on an L3 miss,
	// used unless a banked DRAM model is attached (AttachDRAM).
	DRAMLatency uint64
	dram        *DRAM
}

// DefaultHierarchy builds the Table II configuration: 32KB 8-way L1 (2cyc),
// 256KB 8-way L2 (8cyc), 8MB 16-way L3 (32cyc), DDR main memory.
func DefaultHierarchy() *Hierarchy {
	return &Hierarchy{
		L1:          NewCache("L1D", 32<<10, 8, 64, 2),
		L2:          NewCache("L2", 256<<10, 8, 64, 8),
		L3:          NewCache("L3", 8<<20, 16, 64, 32),
		DRAMLatency: 200,
	}
}

// Access walks the hierarchy for a load of addr: returns the total latency
// and fills all levels on the miss path (inclusive hierarchy).
func (h *Hierarchy) Access(addr uint64) uint64 {
	h.L1.stats.Accesses++
	if h.L1.Lookup(addr) {
		return h.L1.Latency
	}
	h.L1.stats.Misses++
	h.L2.stats.Accesses++
	if h.L2.Lookup(addr) {
		h.L1.Fill(addr)
		return h.L1.Latency + h.L2.Latency
	}
	h.L2.stats.Misses++
	h.L3.stats.Accesses++
	if h.L3.Lookup(addr) {
		h.L2.Fill(addr)
		h.L1.Fill(addr)
		return h.L1.Latency + h.L2.Latency + h.L3.Latency
	}
	h.L3.stats.Misses++
	h.L3.Fill(addr)
	h.L2.Fill(addr)
	h.L1.Fill(addr)
	return h.L1.Latency + h.L2.Latency + h.L3.Latency + h.memoryLatency(addr)
}

// AccessPair walks the hierarchy for two parallel loads (the two cuckoo
// ways): the cost is the slower of the two, since the hardware issues both
// probes concurrently (paper §V-B).
func (h *Hierarchy) AccessPair(a, b uint64) uint64 {
	la := h.Access(a)
	lb := h.Access(b)
	if la > lb {
		return la
	}
	return lb
}

// InvalidateAll empties every level (used on a simulated full flush).
func (h *Hierarchy) InvalidateAll() {
	h.L1.InvalidateAll()
	h.L2.InvalidateAll()
	h.L3.InvalidateAll()
}
