package microarch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache("t", 1<<10, 2, 64, 2)
	if c.Lookup(0x1000) {
		t.Fatal("cold cache hit")
	}
	c.Fill(0x1000)
	if !c.Lookup(0x1000) {
		t.Fatal("filled line missed")
	}
	// Same line, different byte.
	if !c.Lookup(0x103f) {
		t.Fatal("same-line offset missed")
	}
	if c.Lookup(0x1040) {
		t.Fatal("next line hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache: fill three conflicting lines; the LRU one must leave.
	c := NewCache("t", 2*64, 2, 64, 1) // 1 set, 2 ways
	c.Fill(0x0)
	c.Fill(0x1000)
	c.Lookup(0x0)  // make 0x0 MRU
	c.Fill(0x2000) // evicts 0x1000
	if !c.Lookup(0x0) {
		t.Fatal("MRU line evicted")
	}
	if c.Lookup(0x1000) {
		t.Fatal("LRU line survived")
	}
	if !c.Lookup(0x2000) {
		t.Fatal("newly filled line missing")
	}
}

func TestCacheSetIndexing(t *testing.T) {
	c := NewCache("t", 4*64*2, 2, 64, 1) // 4 sets, 2 ways
	// Addresses in different sets must not conflict.
	for i := 0; i < 4; i++ {
		c.Fill(uint64(i * 64))
	}
	for i := 0; i < 4; i++ {
		if !c.Lookup(uint64(i * 64)) {
			t.Fatalf("set %d lost its line", i)
		}
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := DefaultHierarchy()
	// Cold access: L1+L2+L3+DRAM.
	want := h.L1.Latency + h.L2.Latency + h.L3.Latency + h.DRAMLatency
	if got := h.Access(0x5000); got != want {
		t.Fatalf("cold access = %d, want %d", got, want)
	}
	// Now hot in L1.
	if got := h.Access(0x5000); got != h.L1.Latency {
		t.Fatalf("hot access = %d, want %d", got, h.L1.Latency)
	}
}

func TestHierarchyInclusionOnMissPath(t *testing.T) {
	h := DefaultHierarchy()
	h.Access(0x9000)
	// Evict from L1 by filling its set with conflicting lines. L1 has 64
	// sets (stride 4096); L2 has 512 sets, so a 4096 stride walks eight
	// distinct L2 sets and leaves 0x9000 resident in L2.
	for i := 1; i <= 8; i++ {
		h.Access(0x9000 + uint64(i)*4096)
	}
	lat := h.Access(0x9000)
	if lat != h.L1.Latency+h.L2.Latency {
		t.Fatalf("expected L2 hit (%d), got %d", h.L1.Latency+h.L2.Latency, lat)
	}
}

func TestAccessPairParallel(t *testing.T) {
	h := DefaultHierarchy()
	h.Access(0x100) // hot
	cold := uint64(0xdead000)
	lat := h.AccessPair(0x100, cold)
	wantCold := h.L1.Latency + h.L2.Latency + h.L3.Latency + h.DRAMLatency
	if lat != wantCold {
		t.Fatalf("pair latency = %d, want max = %d", lat, wantCold)
	}
	// Both hot now.
	if lat := h.AccessPair(0x100, cold); lat != h.L1.Latency {
		t.Fatalf("hot pair = %d, want %d", lat, h.L1.Latency)
	}
}

func TestStatsAccounting(t *testing.T) {
	h := DefaultHierarchy()
	h.Access(0x40)
	h.Access(0x40)
	s := h.L1.Stats()
	if s.Accesses != 2 || s.Misses != 1 {
		t.Fatalf("L1 stats %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate %f", s.HitRate())
	}
}

func TestInvalidateAll(t *testing.T) {
	h := DefaultHierarchy()
	h.Access(0x40)
	h.InvalidateAll()
	want := h.L1.Latency + h.L2.Latency + h.L3.Latency + h.DRAMLatency
	if got := h.Access(0x40); got != want {
		t.Fatalf("post-flush access = %d, want %d", got, want)
	}
}

func TestTLB(t *testing.T) {
	tlb := DefaultTLB()
	first := tlb.Translate(0x7f0000000000)
	if first != 1+50 {
		t.Fatalf("cold translate = %d, want 51", first)
	}
	if got := tlb.Translate(0x7f0000000800); got != 1 {
		t.Fatalf("same-page translate = %d, want 1", got)
	}
	if got := tlb.Translate(0x7f0000001000); got != 51 {
		t.Fatalf("next-page translate = %d, want 51", got)
	}
	tlb.InvalidateAll()
	if got := tlb.Translate(0x7f0000000000); got != 51 {
		t.Fatalf("post-flush translate = %d, want 51", got)
	}
}

func TestQuickCacheNeverExceedsWays(t *testing.T) {
	f := func(seed int64) bool {
		c := NewCache("q", 4*64*2, 2, 64, 1)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			c.Fill(uint64(rng.Intn(64)) * 64)
		}
		for _, ways := range c.tags {
			if len(ways) > c.Ways {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHierarchyMonotone(t *testing.T) {
	// Property: re-accessing an address immediately is never slower.
	f := func(addr uint64) bool {
		h := DefaultHierarchy()
		first := h.Access(addr)
		second := h.Access(addr)
		return second <= first && second == h.L1.Latency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHierarchyHotAccess(b *testing.B) {
	h := DefaultHierarchy()
	h.Access(0x40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0x40)
	}
}

func BenchmarkHierarchyRandomAccess(b *testing.B) {
	h := DefaultHierarchy()
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 26))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(addrs[i%len(addrs)])
	}
}
