package microarch

// DRAM models main memory with the Table II organization — 2 channels,
// 8 ranks per channel, 8 banks per rank, DDR at 1 GHz (half the 2 GHz core
// clock) — at the fidelity the evaluation needs: per-bank open rows make
// consecutive accesses to the same row cheap (row-buffer hits) and
// bank-conflicting accesses expensive (precharge + activate + access),
// replacing the flat DRAMLatency constant when installed in a Hierarchy.
type DRAM struct {
	Channels     int
	RanksPerChan int
	BanksPerRank int
	RowBytes     int

	// Core-clock cycle costs.
	RowHitLatency  uint64 // CAS only
	RowMissLatency uint64 // activate + CAS
	ConflictExtra  uint64 // precharge before activate

	// openRow holds the open row id per bank (-1 when closed).
	openRow []int64

	stats DRAMStats
}

// DRAMStats counts row-buffer behaviour.
type DRAMStats struct {
	Accesses  uint64
	RowHits   uint64
	RowMisses uint64
	Conflicts uint64
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (s DRAMStats) RowHitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses)
}

// NewDRAM builds the Table II configuration: 2 channels x 8 ranks x 8
// banks, 8KB rows; ~100 core cycles for a row hit, ~200 for a closed-row
// activate, ~300 when a conflicting row must be precharged first.
func NewDRAM() *DRAM {
	d := &DRAM{
		Channels:       2,
		RanksPerChan:   8,
		BanksPerRank:   8,
		RowBytes:       8 << 10,
		RowHitLatency:  100,
		RowMissLatency: 200,
		ConflictExtra:  100,
	}
	n := d.Channels * d.RanksPerChan * d.BanksPerRank
	d.openRow = make([]int64, n)
	for i := range d.openRow {
		d.openRow[i] = -1
	}
	return d
}

// bankAndRow maps a physical address: channel from low line bits (fine
// interleaving), then bank, then row.
func (d *DRAM) bankAndRow(addr uint64) (int, int64) {
	line := addr / 64
	nBanks := uint64(d.Channels * d.RanksPerChan * d.BanksPerRank)
	bank := int(line % nBanks)
	row := int64(addr / uint64(d.RowBytes) / nBanks)
	return bank, row
}

// Access charges one memory access and updates the open-row state.
func (d *DRAM) Access(addr uint64) uint64 {
	d.stats.Accesses++
	bank, row := d.bankAndRow(addr)
	switch d.openRow[bank] {
	case row:
		d.stats.RowHits++
		return d.RowHitLatency
	case -1:
		d.stats.RowMisses++
		d.openRow[bank] = row
		return d.RowMissLatency
	default:
		d.stats.Conflicts++
		d.openRow[bank] = row
		return d.RowMissLatency + d.ConflictExtra
	}
}

// Stats returns the counters.
func (d *DRAM) Stats() DRAMStats { return d.stats }

// AttachDRAM replaces a hierarchy's flat DRAM latency with the banked
// model; subsequent L3 misses pay the row-buffer-aware cost.
func (h *Hierarchy) AttachDRAM(d *DRAM) {
	h.dram = d
}

// memoryLatency returns the cost of going to main memory for addr.
func (h *Hierarchy) memoryLatency(addr uint64) uint64 {
	if h.dram != nil {
		return h.dram.Access(addr)
	}
	return h.DRAMLatency
}
