package microarch

// TLB is a set-associative translation lookaside buffer. VAT base addresses
// in the SPT are virtual, so every hardware VAT access translates first
// (paper §VII-A); the VAT's small footprint makes these translations hit
// almost always, which this model reproduces.
type TLB struct {
	PageSize int
	// WalkLatency is the page-walk cost charged on a miss.
	WalkLatency uint64
	cache       *Cache
}

// NewTLB builds a TLB with the given entry count and associativity.
func NewTLB(entries, ways, pageSize int, hitLatency, walkLatency uint64) *TLB {
	// Reuse the cache structure with one "line" per page.
	sizeBytes := entries * pageSize
	return &TLB{
		PageSize:    pageSize,
		WalkLatency: walkLatency,
		cache:       NewCache("TLB", sizeBytes, ways, pageSize, hitLatency),
	}
}

// DefaultTLB returns a 64-entry, 4-way, 4KB-page TLB with a 1-cycle hit and
// a 50-cycle walk.
func DefaultTLB() *TLB {
	return NewTLB(64, 4, 4096, 1, 50)
}

// Translate charges the translation cost for a virtual address.
func (t *TLB) Translate(addr uint64) uint64 {
	t.cache.stats.Accesses++
	if t.cache.Lookup(addr) {
		return t.cache.Latency
	}
	t.cache.stats.Misses++
	t.cache.Fill(addr)
	return t.cache.Latency + t.WalkLatency
}

// Stats returns hit/miss counters.
func (t *TLB) Stats() CacheStats { return t.cache.Stats() }

// InvalidateAll flushes the TLB (context switch to a different address
// space).
func (t *TLB) InvalidateAll() { t.cache.InvalidateAll() }
