package microarch

import "testing"

func TestDRAMRowBufferHit(t *testing.T) {
	d := NewDRAM()
	first := d.Access(0x1_0000_0000)
	if first != d.RowMissLatency {
		t.Fatalf("cold access = %d, want row miss %d", first, d.RowMissLatency)
	}
	// Same row (same bank, adjacent byte).
	again := d.Access(0x1_0000_0020)
	if again != d.RowHitLatency {
		t.Fatalf("same-row access = %d, want row hit %d", again, d.RowHitLatency)
	}
	st := d.Stats()
	if st.Accesses != 2 || st.RowHits != 1 || st.RowMisses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDRAMBankConflict(t *testing.T) {
	d := NewDRAM()
	nBanks := uint64(d.Channels * d.RanksPerChan * d.BanksPerRank)
	// Two addresses in the same bank but different rows: the stride that
	// keeps the bank index while changing the row.
	a := uint64(0)
	b := uint64(d.RowBytes) * nBanks
	if ba, _ := d.bankAndRow(a); func() int { bb, _ := d.bankAndRow(b); return bb }() != ba {
		t.Fatal("test addresses do not share a bank")
	}
	d.Access(a)
	lat := d.Access(b)
	if lat != d.RowMissLatency+d.ConflictExtra {
		t.Fatalf("conflict latency = %d, want %d", lat, d.RowMissLatency+d.ConflictExtra)
	}
	if d.Stats().Conflicts != 1 {
		t.Fatalf("conflicts = %d", d.Stats().Conflicts)
	}
}

func TestDRAMBankInterleaving(t *testing.T) {
	d := NewDRAM()
	// Consecutive cache lines must land in different banks (line-granular
	// channel/bank interleaving).
	b0, _ := d.bankAndRow(0)
	b1, _ := d.bankAndRow(64)
	if b0 == b1 {
		t.Fatal("adjacent lines share a bank")
	}
}

func TestHierarchyWithBankedDRAM(t *testing.T) {
	h := DefaultHierarchy()
	h.AttachDRAM(NewDRAM())
	cold := h.Access(0x40)
	wantMin := h.L1.Latency + h.L2.Latency + h.L3.Latency + 100
	if cold < wantMin {
		t.Fatalf("cold access %d below banked-DRAM floor %d", cold, wantMin)
	}
	// Streaming within one row after an L3 flush: cheaper than conflicts.
	h.InvalidateAll()
	sameRow := h.Access(0x80)
	h.InvalidateAll()
	stride := uint64(NewDRAM().RowBytes) * uint64(2*8*8)
	conflict := h.Access(0x80 + stride)
	if conflict <= sameRow {
		t.Fatalf("bank conflict (%d) not slower than row hit path (%d)", conflict, sameRow)
	}
}

func TestDRAMRowHitRateOnStream(t *testing.T) {
	d := NewDRAM()
	// A sequential stream revisits each open row many times across banks.
	for addr := uint64(0); addr < 1<<20; addr += 64 {
		d.Access(addr)
	}
	if hr := d.Stats().RowHitRate(); hr < 0.9 {
		t.Fatalf("streaming row hit rate %.2f, want >= 0.9", hr)
	}
}
